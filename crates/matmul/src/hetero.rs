//! Heterogeneous PACO matrix multiplication (Sect. III-E-2, Corollary 12, and
//! the experimental variant of Sect. IV-A used for Fig. 9b).
//!
//! The paper's 72-core machine turned out to be heterogeneous (the 18 cores of
//! socket 0 ran ~3× faster than the other 54), and a throughput-aware PACO
//! split raised the mean speedup over MKL from 3.4% to 48.6%.  We do not have a
//! heterogeneous machine, so the experiment is reproduced on an *emulated* one:
//! a [`ThrottleSpec`] makes the "slow" workers repeat their leaf kernels, and
//! the comparison is between
//!
//! * [`hetero_mm`] — the throughput-aware split: the processor list is divided
//!   into two halves as a binary tree over the workers, and the cuboid is cut
//!   on its longest dimension in the ratio of the two halves' total throughput
//!   (the Sect. IV-A variant, similar to Nagamochi–Abe rectangular
//!   partitioning, which gives each processor exactly one piece), and
//! * [`unaware_mm`] — the plain even 1-PIECE split executed on the same
//!   emulated machine, standing in for any heterogeneity-unaware competitor
//!   (MKL in the paper's figure).
//!
//! Corollary 12 predicts the aware split reaches the ideal speedup
//! `Σtᵢ / t₁` while the unaware split is gated by the slowest core.

use crate::paco_mm::{paco_mm_1piece_with, MmConfig};
use paco_core::matrix::Matrix;
use paco_core::semiring::Semiring;
use paco_runtime::hetero::ThrottleSpec;
use paco_runtime::WorkerPool;

/// Throughput-aware PACO MM on an (emulated) heterogeneous machine: work is
/// split in proportion to the configured throughput ratios and every leaf is
/// throttled according to the same specification.
pub fn hetero_mm<S: Semiring>(
    a: &Matrix<S>,
    b: &Matrix<S>,
    pool: &WorkerPool,
    throttle: &ThrottleSpec,
) -> Matrix<S> {
    let cfg = MmConfig {
        fractions: Some(throttle.spec().fractions()),
        throttle: Some(throttle.clone()),
        cutoff: crate::kernel::MM_BASE,
    };
    paco_mm_1piece_with(a, b, pool, &cfg)
}

/// Heterogeneity-*unaware* PACO MM running on the same emulated machine: the
/// cuboid is split evenly (as if all cores were equal) while the leaves are
/// still throttled.  This is the baseline the aware split is compared against
/// in the Fig. 9b reproduction.
pub fn unaware_mm<S: Semiring>(
    a: &Matrix<S>,
    b: &Matrix<S>,
    pool: &WorkerPool,
    throttle: &ThrottleSpec,
) -> Matrix<S> {
    let cfg = MmConfig {
        fractions: None,
        throttle: Some(throttle.clone()),
        cutoff: crate::kernel::MM_BASE,
    };
    paco_mm_1piece_with(a, b, pool, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::co_mm::mm_reference;
    use paco_core::machine::HeteroSpec;
    use paco_core::metrics::min_time_of;
    use paco_core::workload::random_matrix_wrapping;

    #[test]
    fn aware_and_unaware_are_both_correct() {
        let a = random_matrix_wrapping(96, 80, 21);
        let b = random_matrix_wrapping(80, 72, 22);
        let expect = mm_reference(&a, &b);
        let spec = HeteroSpec::new(vec![3.0, 1.0, 1.0, 1.0]);
        let throttle = ThrottleSpec::from_spec(&spec);
        let pool = WorkerPool::new(4);
        assert_eq!(expect, hetero_mm(&a, &b, &pool, &throttle));
        assert_eq!(expect, unaware_mm(&a, &b, &pool, &throttle));
    }

    #[test]
    fn aware_split_is_faster_on_the_emulated_heterogeneous_machine() {
        // One fast core (ratio 4) and three slow ones.  The unaware split gives
        // every core the same share, so its makespan is gated by a slow core
        // doing ~1/4 of the work at 1/4 speed; the aware split gives the fast
        // core ~4/7 of the work.  Expect a clear win (we only require 15% to
        // keep the test robust on noisy CI machines).
        //
        // The workload is the exact integer ring, *not* `f64`: the throttle
        // emulates a slow core by repeating leaf kernels, which models time
        // faithfully only while every semiring op costs the same.  The
        // `WrappingRing` leaves run the uniform-cost generic loop; the `f64`
        // leaves dispatch to the SIMD microkernel, whose throughput varies
        // with block shape by more than the margin this test asserts.
        let n = 320;
        let a = random_matrix_wrapping(n, n, 31);
        let b = random_matrix_wrapping(n, n, 32);
        let spec = HeteroSpec::new(vec![4.0, 1.0, 1.0, 1.0]);
        let throttle = ThrottleSpec::from_spec(&spec);
        let pool = WorkerPool::new(4);

        let t_aware = min_time_of(3, || {
            std::hint::black_box(hetero_mm(&a, &b, &pool, &throttle))
        });
        let t_unaware = min_time_of(3, || {
            std::hint::black_box(unaware_mm(&a, &b, &pool, &throttle))
        });
        assert!(
            t_unaware > 1.15 * t_aware,
            "aware {t_aware:.4}s should beat unaware {t_unaware:.4}s clearly"
        );
    }

    #[test]
    fn homogeneous_spec_reduces_to_plain_1piece() {
        let a = random_matrix_wrapping(64, 64, 41);
        let b = random_matrix_wrapping(64, 64, 42);
        let spec = HeteroSpec::homogeneous(3);
        let throttle = ThrottleSpec::from_spec(&spec);
        let pool = WorkerPool::new(3);
        let expect = mm_reference(&a, &b);
        assert_eq!(expect, hetero_mm(&a, &b, &pool, &throttle));
    }
}
