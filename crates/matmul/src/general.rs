//! The *general* PACO MM algorithm (Fig. 7, Theorem 9), executed.
//!
//! Unlike MM-1-PIECE (one cuboid per processor, [`crate::paco_mm`]), the
//! general algorithm lets every processor own a geometrically decreasing
//! *sequence* of cuboids produced by the pruned BFS traversal.  Execution here
//! follows the paper's structure:
//!
//! 1. the computation cuboid is partitioned by the pruned BFS
//!    ([`paco_runtime::pruned_bfs`]) into placed cuboids, each carrying its
//!    offsets inside the original `n × m × k` iteration space;
//! 2. every processor multiplies each of its cuboids with the sequential
//!    cache-oblivious kernel into a private temporary the size of the cuboid's
//!    bottom face (the paper allocates such a temporary whenever a height cut
//!    separates siblings; allocating one per assigned cuboid is the same
//!    asymptotic space, `O(S + S⁺_p)`, and keeps every multiplication
//!    independent);
//! 3. the temporaries are reduced into the output with parallel additions, the
//!    output rows being partitioned over the processors so the reduction is
//!    race-free.
//!
//! The reduction moves `O(Σ bottom faces)` words, which the proof of Theorem 9
//! charges to the corresponding multiplications; the tests below check both the
//! exact result and the geometric-decrease/balance invariants of the placement.

use crate::co_mm::co_mm_with_cutoff;
use crate::kernel::MM_BASE;
use paco_core::matrix::Matrix;
use paco_core::semiring::Semiring;
use paco_runtime::schedule::{Plan, Step};
use paco_runtime::{pruned_bfs_with_options, Assignment, BfsOptions, DcNode, WorkerPool};
use parking_lot::Mutex;

/// A cuboid of the `n × m × k` iteration space with explicit offsets: rows
/// `i0..i0+rows` of `C`/`A`, columns `j0..j0+cols` of `C`/`B`, reduction range
/// `k0..k0+depth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedCuboid {
    /// First output row.
    pub i0: usize,
    /// First output column.
    pub j0: usize,
    /// First reduction index.
    pub k0: usize,
    /// Number of output rows.
    pub rows: usize,
    /// Number of output columns.
    pub cols: usize,
    /// Reduction depth.
    pub depth: usize,
    /// Base-case threshold for the pruned BFS.
    pub base: usize,
}

impl PlacedCuboid {
    /// The whole iteration space of an `n × k` times `k × m` product.
    pub fn root(n: usize, m: usize, k: usize, base: usize) -> Self {
        Self {
            i0: 0,
            j0: 0,
            k0: 0,
            rows: n,
            cols: m,
            depth: k,
            base: base.max(1),
        }
    }
}

impl DcNode for PlacedCuboid {
    fn divide(&self) -> Vec<Self> {
        let mut first = *self;
        let mut second = *self;
        if self.rows >= self.cols && self.rows >= self.depth {
            let half = self.rows / 2;
            first.rows = half;
            second.rows = self.rows - half;
            second.i0 = self.i0 + half;
        } else if self.cols >= self.depth {
            let half = self.cols / 2;
            first.cols = half;
            second.cols = self.cols - half;
            second.j0 = self.j0 + half;
        } else {
            let half = self.depth / 2;
            first.depth = half;
            second.depth = self.depth - half;
            second.k0 = self.k0 + half;
        }
        vec![first, second]
    }

    fn is_base(&self) -> bool {
        self.rows.max(self.cols).max(self.depth) <= self.base
    }

    fn work(&self) -> f64 {
        self.rows as f64 * self.cols as f64 * self.depth as f64
    }

    fn surface(&self) -> f64 {
        (self.rows * self.cols + self.rows * self.depth + self.cols * self.depth) as f64
    }
}

/// The pruned-BFS placement of the general algorithm (offsets included), for
/// inspection by tests and the scaling experiment.
pub fn plan_paco_mm_general(
    n: usize,
    m: usize,
    k: usize,
    p: usize,
    base: usize,
) -> Assignment<PlacedCuboid> {
    pruned_bfs_with_options(PlacedCuboid::root(n, m, k, base), p, BfsOptions::default())
}

/// `C = A ⊗ B` with the general PACO MM algorithm (Theorem 9) on `pool.p()`
/// processors.
pub fn paco_mm_general<S: Semiring>(a: &Matrix<S>, b: &Matrix<S>, pool: &WorkerPool) -> Matrix<S> {
    paco_mm_general_with_base(a, b, pool, MM_BASE)
}

/// [`paco_mm_general`] with an explicit pruned-BFS base-case threshold.
pub fn paco_mm_general_with_base<S: Semiring>(
    a: &Matrix<S>,
    b: &Matrix<S>,
    pool: &WorkerPool,
    base: usize,
) -> Matrix<S> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let n = a.rows();
    let k = a.cols();
    let m = b.cols();
    let mut c = Matrix::zeros(n, m);
    if n == 0 || m == 0 || k == 0 {
        return c;
    }

    let assignment = plan_paco_mm_general(n, m, k, pool.p(), base);

    // ---- Phase 2: every processor multiplies its cuboids into private
    // temporaries (one per cuboid, sized to the cuboid's bottom face).  The
    // pruned-BFS assignment lowers to a single-wave plan: one barrier, every
    // cuboid spawned onto its processor, per-processor order preserved by the
    // pool FIFO.
    type Partial<S> = (PlacedCuboid, Matrix<S>);
    let partials: Vec<Mutex<Vec<Partial<S>>>> =
        (0..pool.p()).map(|_| Mutex::new(Vec::new())).collect();
    {
        let av = a.as_ref();
        let bv = b.as_ref();
        let partials_ref = &partials;
        assignment.into_plan().execute(pool, |proc, cuboid| {
            let a_block = av.submatrix(cuboid.i0, cuboid.k0, cuboid.rows, cuboid.depth);
            let b_block = bv.submatrix(cuboid.k0, cuboid.j0, cuboid.depth, cuboid.cols);
            let mut tmp: Matrix<S> = Matrix::zeros(cuboid.rows, cuboid.cols);
            co_mm_with_cutoff(tmp.as_mut(), a_block, b_block, MM_BASE);
            partials_ref[proc].lock().push((*cuboid, tmp));
        });
    }

    // ---- Phase 3: reduce the partial products into C.  The output rows are
    // partitioned over the processors; each worker folds in every partial that
    // intersects its row band, so no two workers touch the same output cell.
    // The bands are disjoint `MatMut` windows, moved into a one-wave plan.
    let all_partials: Vec<Partial<S>> = partials.into_iter().flat_map(|m| m.into_inner()).collect();
    {
        let all_ref = &all_partials;
        let p = pool.p();
        let mut bands = Vec::with_capacity(p);
        let mut rest = c.as_mut();
        for proc in 0..p {
            let lo = proc * n / p;
            let hi = (proc + 1) * n / p;
            let (band, tail) = rest.split_rows(hi - lo);
            rest = tail;
            bands.push(Step {
                proc,
                job: (lo, hi, band),
            });
        }
        Plan::single_wave(p, bands).execute_owned(pool, |_, (lo, hi, mut band)| {
            for (cuboid, tmp) in all_ref {
                let c_lo = cuboid.i0.max(lo);
                let c_hi = (cuboid.i0 + cuboid.rows).min(hi);
                if c_lo >= c_hi {
                    continue;
                }
                for i in c_lo..c_hi {
                    for j in 0..cuboid.cols {
                        let cur = band.at(i - lo, cuboid.j0 + j);
                        band.set(i - lo, cuboid.j0 + j, cur.add(tmp.get(i - cuboid.i0, j)));
                    }
                }
            }
        });
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::co_mm::mm_reference;
    use paco_core::workload::{random_matrix_f64, random_matrix_wrapping};

    #[test]
    fn matches_reference_for_various_p_exact() {
        let a = random_matrix_wrapping(90, 70, 51);
        let b = random_matrix_wrapping(70, 110, 52);
        let expect = mm_reference(&a, &b);
        for p in [1usize, 2, 3, 5, 7, 8] {
            let pool = WorkerPool::new(p);
            assert_eq!(
                expect,
                paco_mm_general_with_base(&a, &b, &pool, 16),
                "p={p}"
            );
        }
    }

    #[test]
    fn matches_reference_f64_with_deep_reduction() {
        // Deep k forces height cuts, i.e. overlapping output regions that the
        // reduction phase must sum correctly.
        let a = random_matrix_f64(48, 400, 53);
        let b = random_matrix_f64(400, 40, 54);
        let expect = mm_reference(&a, &b);
        let pool = WorkerPool::new(6);
        let got = paco_mm_general_with_base(&a, &b, &pool, 32);
        assert!(
            expect.approx_eq(&got, 1e-9),
            "max diff {}",
            expect.max_abs_diff(&got)
        );
    }

    #[test]
    fn placement_has_geometric_per_processor_sequences() {
        for &p in &[3usize, 7, 11, 24] {
            let plan = plan_paco_mm_general(512, 512, 512, p, 32);
            let report = plan.report();
            assert!((report.total_work - 512f64.powi(3)).abs() < 1e-3, "p={p}");
            assert!(
                report.work_imbalance < 1.3,
                "p={p}: {}",
                report.work_imbalance
            );
            assert!(report.geometric_decrease, "p={p}");
            // Every processor receives at least one cuboid once p leaves exist.
            assert!(plan.per_proc.iter().all(|v| !v.is_empty()), "p={p}");
        }
    }

    #[test]
    fn placement_offsets_tile_the_iteration_space() {
        let plan = plan_paco_mm_general(64, 48, 80, 5, 8);
        // Total volume of placed cuboids equals the full iteration space and no
        // (i, j, k) point is covered twice: check via a coarse 3D occupancy grid.
        let mut covered = vec![0u8; 64 * 48 * 80];
        for cuboid in plan.per_proc.iter().flatten() {
            for i in cuboid.i0..cuboid.i0 + cuboid.rows {
                for j in cuboid.j0..cuboid.j0 + cuboid.cols {
                    for k in cuboid.k0..cuboid.k0 + cuboid.depth {
                        let idx = (i * 48 + j) * 80 + k;
                        assert_eq!(covered[idx], 0, "point ({i},{j},{k}) covered twice");
                        covered[idx] = 1;
                    }
                }
            }
        }
        assert!(
            covered.iter().all(|&x| x == 1),
            "iteration space fully covered"
        );
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let pool = WorkerPool::new(4);
        let a = random_matrix_wrapping(1, 1, 1);
        let b = random_matrix_wrapping(1, 1, 2);
        assert_eq!(mm_reference(&a, &b), paco_mm_general(&a, &b, &pool));
        let a0 = random_matrix_wrapping(0, 3, 3);
        let b0 = random_matrix_wrapping(3, 2, 4);
        let c0 = paco_mm_general(&a0, &b0, &pool);
        assert_eq!((c0.rows(), c0.cols()), (0, 2));
    }
}
