//! The vendor-library stand-in (Intel MKL substitute).
//!
//! The paper compares PACO MM against Intel MKL's parallel `dgemm`.  MKL is
//! closed source and unavailable here, so the strongest conventional baseline
//! we can build from scratch stands in: a statically tiled, loop-ordered,
//! rayon-parallel `f64` matrix multiplication.  It is processor-count-agnostic
//! (static tiling + dynamic scheduling over row panels), which is exactly the
//! kind of "vendor library" behaviour the PACO comparison is about: a fixed
//! partitioning that does not adapt to `p` or to the recursive cache structure.
//! The substitution is recorded in DESIGN.md.

use paco_core::matrix::Matrix;
use rayon::prelude::*;

/// Tile sizes of the baseline kernel (row panel × column panel × depth panel).
const TILE_I: usize = 32;
const TILE_J: usize = 64;
const TILE_K: usize = 64;

/// `C = A · B` for `f64` matrices with a tiled, rayon-parallel kernel.
///
/// Panics unless the inner dimensions agree.
pub fn blocked_parallel_mm(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let n = a.rows();
    let k = a.cols();
    let m = b.cols();
    let mut c = Matrix::zeros(n, m);
    if n == 0 || m == 0 || k == 0 {
        return c;
    }

    let a_data = a.data();
    let b_data = b.data();
    // Parallelise over disjoint row panels of C; each worker owns its panel.
    c.data_mut()
        .par_chunks_mut(TILE_I * m)
        .enumerate()
        .for_each(|(panel_idx, c_panel)| {
            let i0 = panel_idx * TILE_I;
            let i1 = (i0 + TILE_I).min(n);
            for k0 in (0..k).step_by(TILE_K) {
                let k1 = (k0 + TILE_K).min(k);
                for j0 in (0..m).step_by(TILE_J) {
                    let j1 = (j0 + TILE_J).min(m);
                    for i in i0..i1 {
                        let c_row = &mut c_panel[(i - i0) * m..(i - i0) * m + m];
                        let a_row = &a_data[i * k..(i + 1) * k];
                        for l in k0..k1 {
                            let ail = a_row[l];
                            let b_row = &b_data[l * m..(l + 1) * m];
                            for j in j0..j1 {
                                c_row[j] = ail.mul_add(b_row[j], c_row[j]);
                            }
                        }
                    }
                }
            }
        });
    c
}

/// Single-threaded version of the same tiled kernel; used by the benchmark
/// harness to calibrate per-core peak throughput for the `Rmax/Rpeak` table.
pub fn blocked_sequential_mm(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let n = a.rows();
    let k = a.cols();
    let m = b.cols();
    let mut c = Matrix::zeros(n, m);
    let a_data = a.data();
    let b_data = b.data();
    let c_data = c.data_mut();
    for i0 in (0..n).step_by(TILE_I) {
        let i1 = (i0 + TILE_I).min(n);
        for k0 in (0..k).step_by(TILE_K) {
            let k1 = (k0 + TILE_K).min(k);
            for j0 in (0..m).step_by(TILE_J) {
                let j1 = (j0 + TILE_J).min(m);
                for i in i0..i1 {
                    let a_row = &a_data[i * k..(i + 1) * k];
                    for l in k0..k1 {
                        let ail = a_row[l];
                        let b_row = &b_data[l * m..(l + 1) * m];
                        for j in j0..j1 {
                            c_data[i * m + j] = ail.mul_add(b_row[j], c_data[i * m + j]);
                        }
                    }
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::co_mm::mm_reference;
    use paco_core::workload::random_matrix_f64;

    #[test]
    fn parallel_matches_reference() {
        for &(n, m, k) in &[
            (1usize, 1usize, 1usize),
            (40, 70, 30),
            (96, 96, 96),
            (130, 33, 257),
        ] {
            let a = random_matrix_f64(n, k, 3);
            let b = random_matrix_f64(k, m, 4);
            let expect = mm_reference(&a, &b);
            let got = blocked_parallel_mm(&a, &b);
            assert!(expect.approx_eq(&got, 1e-9), "n={n} m={m} k={k}");
        }
    }

    #[test]
    fn sequential_matches_parallel() {
        let a = random_matrix_f64(75, 90, 5);
        let b = random_matrix_f64(90, 60, 6);
        let p = blocked_parallel_mm(&a, &b);
        let s = blocked_sequential_mm(&a, &b);
        assert!(p.approx_eq(&s, 1e-12));
    }

    #[test]
    fn empty_inputs() {
        let a = random_matrix_f64(0, 5, 1);
        let b = random_matrix_f64(5, 3, 2);
        let c = blocked_parallel_mm(&a, &b);
        assert_eq!((c.rows(), c.cols()), (0, 3));
    }
}
