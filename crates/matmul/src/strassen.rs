//! Strassen's algorithm (Sect. III-F): sequential, processor-oblivious and
//! PACO variants, including STRASSEN-CONST-PIECES.
//!
//! Strassen reduces one `n × n` multiplication to seven `n/2 × n/2`
//! multiplications plus a constant number of additions/subtractions (hence the
//! [`Ring`] bound).  The paper's PACO STRASSEN is a pruned BFS traversal of the
//! 7-ary tree of multiplications: all the `Sᵣ`, `Tᵣ` operand matrices of a
//! level are materialised so that every node of the level is independent; as
//! soon as a level holds at least `p` unassigned nodes, `p` of them are pruned
//! and assigned round-robin; assigned nodes run the *sequential* Strassen
//! kernel on their processor; afterwards the intermediate products are combined
//! bottom-up.  STRASSEN-CONST-PIECES (Corollary 14) additionally stops pruning
//! after `γ` super-rounds, trading an arbitrarily small load imbalance for a
//! constant number of pieces per processor (and an `O(log p)` latency bound in
//! a distributed-memory translation).
//!
//! Odd-sized (sub)problems fall back to the cache-oblivious classical kernel,
//! so no padding is required; on power-of-two sizes the algorithms are pure
//! Strassen.

use crate::co_mm::co_mm_alloc;
use crate::kernel::{mat_add_into, mat_copy_into, mat_sub_into};
use paco_core::arena::ScratchArena;
use paco_core::matrix::{MatRef, Matrix};
use paco_core::proc_list::ProcList;
use paco_core::semiring::Ring;
use paco_runtime::schedule::{Plan, Step};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::Arc;

/// Default side length below which Strassen falls back to the classical
/// cache-oblivious kernel (an alias of the hoisted workspace default in
/// [`paco_core::tuning`]).
pub const STRASSEN_CUTOFF: usize = paco_core::tuning::STRASSEN_CUTOFF;

fn quadrants<'a, R: Ring>(
    m: &MatRef<'a, R>,
    h: usize,
) -> (MatRef<'a, R>, MatRef<'a, R>, MatRef<'a, R>, MatRef<'a, R>) {
    (
        m.submatrix(0, 0, h, h),
        m.submatrix(0, h, h, h),
        m.submatrix(h, 0, h, h),
        m.submatrix(h, h, h, h),
    )
}

/// Allocate an `h × h` zero matrix, checking the backing buffer out of the
/// arena when one is supplied.
fn alloc_square<R: Ring>(h: usize, arena: Option<&ScratchArena>) -> Matrix<R> {
    match arena {
        Some(arena) => Matrix::from_vec(h, h, arena.take_vec(h * h, R::zero())),
        None => Matrix::zeros(h, h),
    }
}

/// The seven Strassen operand pairs `(Sᵣ, Tᵣ)` of one split.
fn strassen_operands<R: Ring>(
    a: &Matrix<R>,
    b: &Matrix<R>,
    arena: Option<&ScratchArena>,
) -> Vec<(Matrix<R>, Matrix<R>)> {
    let n = a.rows();
    debug_assert_eq!(n % 2, 0);
    let h = n / 2;
    let av = a.as_ref();
    let bv = b.as_ref();
    let (a00, a01, a10, a11) = quadrants(&av, h);
    let (b00, b01, b10, b11) = quadrants(&bv, h);

    let mut out = Vec::with_capacity(7);
    let pair = |fill: &dyn Fn(&mut Matrix<R>, &mut Matrix<R>)| {
        let mut s = alloc_square(h, arena);
        let mut t = alloc_square(h, arena);
        fill(&mut s, &mut t);
        (s, t)
    };

    // M1 = (A00 ⊕ A11)(B00 ⊕ B11)
    out.push(pair(&|s, t| {
        mat_add_into(&mut s.as_mut(), &a00, &a11);
        mat_add_into(&mut t.as_mut(), &b00, &b11);
    }));
    // M2 = (A10 ⊕ A11) B00
    out.push(pair(&|s, t| {
        mat_add_into(&mut s.as_mut(), &a10, &a11);
        mat_copy_into(&mut t.as_mut(), &b00);
    }));
    // M3 = A00 (B01 ⊖ B11)
    out.push(pair(&|s, t| {
        mat_copy_into(&mut s.as_mut(), &a00);
        mat_sub_into(&mut t.as_mut(), &b01, &b11);
    }));
    // M4 = A11 (B10 ⊖ B00)
    out.push(pair(&|s, t| {
        mat_copy_into(&mut s.as_mut(), &a11);
        mat_sub_into(&mut t.as_mut(), &b10, &b00);
    }));
    // M5 = (A00 ⊕ A01) B11
    out.push(pair(&|s, t| {
        mat_add_into(&mut s.as_mut(), &a00, &a01);
        mat_copy_into(&mut t.as_mut(), &b11);
    }));
    // M6 = (A10 ⊖ A00)(B00 ⊕ B01)
    out.push(pair(&|s, t| {
        mat_sub_into(&mut s.as_mut(), &a10, &a00);
        mat_add_into(&mut t.as_mut(), &b00, &b01);
    }));
    // M7 = (A01 ⊖ A11)(B10 ⊕ B11)
    out.push(pair(&|s, t| {
        mat_sub_into(&mut s.as_mut(), &a01, &a11);
        mat_add_into(&mut t.as_mut(), &b10, &b11);
    }));
    out
}

/// Combine the seven products `M₁..M₇` into the `2h × 2h` result:
/// `C00 = M1 ⊕ M4 ⊖ M5 ⊕ M7`, `C01 = M3 ⊕ M5`, `C10 = M2 ⊕ M4`,
/// `C11 = M1 ⊖ M2 ⊕ M3 ⊕ M6`.
fn strassen_combine<R: Ring>(ms: &[Matrix<R>], arena: Option<&ScratchArena>) -> Matrix<R> {
    debug_assert_eq!(ms.len(), 7);
    let h = ms[0].rows();
    let n = 2 * h;
    let mut c = alloc_square(n, arena);
    let (m1, m2, m3, m4, m5, m6, m7) = (&ms[0], &ms[1], &ms[2], &ms[3], &ms[4], &ms[5], &ms[6]);
    for i in 0..h {
        for j in 0..h {
            c.set(
                i,
                j,
                m1.get(i, j)
                    .add(m4.get(i, j))
                    .sub(m5.get(i, j))
                    .add(m7.get(i, j)),
            );
            c.set(i, j + h, m3.get(i, j).add(m5.get(i, j)));
            c.set(i + h, j, m2.get(i, j).add(m4.get(i, j)));
            c.set(
                i + h,
                j + h,
                m1.get(i, j)
                    .sub(m2.get(i, j))
                    .add(m3.get(i, j))
                    .add(m6.get(i, j)),
            );
        }
    }
    c
}

fn check_square<R: Ring>(a: &Matrix<R>, b: &Matrix<R>) {
    assert_eq!(a.rows(), a.cols(), "Strassen expects square matrices");
    assert_eq!(b.rows(), b.cols(), "Strassen expects square matrices");
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
}

/// Sequential Strassen with fallback to the cache-oblivious classical kernel
/// below `cutoff` (or on odd sizes).
pub fn strassen_sequential_with_cutoff<R: Ring>(
    a: &Matrix<R>,
    b: &Matrix<R>,
    cutoff: usize,
) -> Matrix<R> {
    check_square(a, b);
    let n = a.rows();
    if n <= cutoff.max(1) || !n.is_multiple_of(2) {
        return co_mm_alloc(a, b);
    }
    let products: Vec<Matrix<R>> = strassen_operands(a, b, None)
        .iter()
        .map(|(s, t)| strassen_sequential_with_cutoff(s, t, cutoff))
        .collect();
    strassen_combine(&products, None)
}

/// Sequential Strassen with the default cutoff.
pub fn strassen_sequential<R: Ring>(a: &Matrix<R>, b: &Matrix<R>) -> Matrix<R> {
    strassen_sequential_with_cutoff(a, b, STRASSEN_CUTOFF)
}

/// Processor-oblivious Strassen: the seven sub-products of every split are
/// handed to rayon's randomized work stealer with no processor placement.
pub fn strassen_po_with_cutoff<R: Ring>(a: &Matrix<R>, b: &Matrix<R>, cutoff: usize) -> Matrix<R> {
    check_square(a, b);
    let n = a.rows();
    if n <= cutoff.max(1) || !n.is_multiple_of(2) {
        return co_mm_alloc(a, b);
    }
    let operands = strassen_operands(a, b, None);
    let products: Vec<Matrix<R>> = operands
        .par_iter()
        .map(|(s, t)| strassen_po_with_cutoff(s, t, cutoff))
        .collect();
    strassen_combine(&products, None)
}

/// [`strassen_po_with_cutoff`] with the default cutoff.
pub fn strassen_po<R: Ring>(a: &Matrix<R>, b: &Matrix<R>) -> Matrix<R> {
    strassen_po_with_cutoff(a, b, STRASSEN_CUTOFF)
}

// ---------------------------------------------------------------------------
// PACO Strassen
// ---------------------------------------------------------------------------

/// One node of the structural 7-ary multiplication tree: which children a
/// node expanded into (empty for leaves) and its side length.  Pure shape —
/// the operand matrices live in the bound [`StrassenRun`].
#[derive(Debug, Clone)]
pub struct StrassenNode {
    /// Child node indices (empty for leaves).  Children always have larger
    /// indices than their parent, so an in-order sweep can derive operands
    /// top-down and a reverse sweep can combine products bottom-up.
    pub children: Vec<usize>,
    /// Problem side length at this node.
    pub size: usize,
}

/// The compiled PACO Strassen schedule: the structural 7-ary tree plus the
/// single-wave leaf plan.  Depends only on `(n, p, opts)` — the pruned BFS
/// expands and assigns by node *size* alone — so it can be cached and bound
/// to fresh operands via [`StrassenRun::from_plan`].
#[derive(Debug, Clone)]
pub struct StrassenPlan {
    /// The tree shape, root at index 0.
    pub nodes: Vec<StrassenNode>,
    /// The executable single-wave schedule; jobs are leaf node indices.
    pub plan: Plan<usize>,
}

/// Tuning parameters of PACO Strassen.
#[derive(Debug, Clone, Copy)]
pub struct StrassenOptions {
    /// Classical-kernel fallback threshold inside the sequential leaf kernel.
    pub cutoff: usize,
    /// Stop expanding the parallel tree once nodes reach this side length
    /// (they are then assigned as-is).
    pub parallel_base: usize,
    /// `γ`: maximum number of assignment super-rounds before everything left is
    /// dealt out round-robin (`None` = unlimited, the plain PACO STRASSEN;
    /// `Some(γ)` = STRASSEN-CONST-PIECES).
    pub gamma: Option<usize>,
}

impl Default for StrassenOptions {
    fn default() -> Self {
        Self {
            cutoff: STRASSEN_CUTOFF,
            parallel_base: 2 * STRASSEN_CUTOFF,
            gamma: None,
        }
    }
}

/// Compile the structural PACO Strassen schedule: phase 1's pruned BFS
/// expansion and assignment of the 7-ary tree, driven purely by node sizes.
/// Degenerate instances (`p == 1`, small or odd `n`) compile to a one-step
/// plan running the sequential algorithm on the root.
pub fn plan_strassen(n: usize, p: usize, opts: StrassenOptions) -> StrassenPlan {
    let mut nodes = vec![StrassenNode {
        children: Vec::new(),
        size: n,
    }];
    if p == 1 || n <= opts.parallel_base || !n.is_multiple_of(2) {
        return StrassenPlan {
            nodes,
            plan: Plan::single_wave(p.max(1), vec![Step { proc: 0, job: 0 }]),
        };
    }

    // ---- Phase 1: pruned BFS expansion of the 7-ary tree. ----
    let procs = ProcList::all(p);
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); p]; // node indices per proc
    let mut frontier: Vec<usize> = vec![0];
    let mut rr = 0usize;
    let mut super_rounds = 0usize;

    while !frontier.is_empty() {
        let all_base = frontier
            .iter()
            .all(|&i| nodes[i].size <= opts.parallel_base || !nodes[i].size.is_multiple_of(2));
        let gamma_reached = opts.gamma.is_some_and(|g| super_rounds >= g);

        if frontier.len() >= p || all_base || gamma_reached {
            let take = if !all_base && !gamma_reached && frontier.len() >= p {
                p
            } else {
                frontier.len()
            };
            let rest = frontier.split_off(take);
            for idx in frontier {
                assignment[procs.round_robin(rr)].push(idx);
                rr += 1;
            }
            super_rounds += 1;
            frontier = rest;
            if all_base || gamma_reached {
                for idx in frontier.drain(..) {
                    assignment[procs.round_robin(rr)].push(idx);
                    rr += 1;
                }
            }
            continue;
        }

        // Expand every frontier node one Strassen level.
        let mut next = Vec::with_capacity(frontier.len() * 7);
        for idx in frontier {
            if nodes[idx].size <= opts.parallel_base || !nodes[idx].size.is_multiple_of(2) {
                next.push(idx);
                continue;
            }
            let child_size = nodes[idx].size / 2;
            for _ in 0..7 {
                let child_idx = nodes.len();
                nodes.push(StrassenNode {
                    children: Vec::new(),
                    size: child_size,
                });
                nodes[idx].children.push(child_idx);
            }
            // Only the (unexpanded) children are schedulable work; the
            // parent waits for them in the combine phase.
            next.extend(nodes[idx].children.iter().copied());
        }
        frontier = next;
    }

    // ---- Phase 2 compiles to a single-wave plan (the leaves are mutually
    // independent; per-processor order rides the pool FIFO). ----
    let steps: Vec<Step<usize>> = assignment
        .iter()
        .enumerate()
        .flat_map(|(proc, leaf_ids)| leaf_ids.iter().map(move |&idx| Step { proc, job: idx }))
        .collect();
    StrassenPlan {
        nodes,
        plan: Plan::single_wave(p, steps),
    }
}

/// A prepared PACO Strassen instance: a structural [`StrassenPlan`] bound to
/// concrete operands.  Binding replays the tree top-down to materialise every
/// node's `(Sᵣ, Tᵣ)` operand pair (internal nodes drop theirs once expanded),
/// the single-wave plan multiplies the leaves in parallel, and the bottom-up
/// combine (phase 3) is deferred to [`StrassenRun::finish`].  This is the
/// unit the service layer's `Session` schedules — alone, in batches, or mixed
/// with other workloads.
pub struct StrassenRun<R: Ring> {
    compiled: Arc<StrassenPlan>,
    /// `operands[idx]`: the node's `(Sᵣ, Tᵣ)` pair; `None` for expanded
    /// internal nodes (their products come from their children).
    operands: Vec<Option<(Matrix<R>, Matrix<R>)>>,
    results: Vec<Mutex<Option<Matrix<R>>>>,
    cutoff: usize,
    /// Pool the operand/combine temporaries cycle through (`from_plan_in`
    /// runs only).
    arena: Option<Arc<ScratchArena>>,
}

impl<R: Ring> StrassenRun<R> {
    /// Expand and assign `C = A ⊗ B` for `p` processors.
    pub fn prepare(a: Matrix<R>, b: Matrix<R>, p: usize, opts: StrassenOptions) -> Self {
        check_square(&a, &b);
        let compiled = Arc::new(plan_strassen(a.rows(), p, opts));
        Self::from_plan(a, b, compiled, opts.cutoff)
    }

    /// Bind operands to an already-compiled (typically cached) structural
    /// plan.  The plan must have been produced by [`plan_strassen`] for
    /// exactly this operand size; the tree is replayed in index order (a
    /// parent always precedes its children) to derive every node's operands.
    pub fn from_plan(
        a: Matrix<R>,
        b: Matrix<R>,
        compiled: Arc<StrassenPlan>,
        cutoff: usize,
    ) -> Self {
        Self::from_plan_inner(a, b, compiled, cutoff, None)
    }

    /// [`Self::from_plan`], but every `(Sᵣ, Tᵣ)` operand pair and combine
    /// output is checked out of `arena`, and spent buffers (expanded parents'
    /// operands at bind, child products at [`Self::finish`]) are returned to
    /// it — repeated multiplications through the same arena recycle the whole
    /// temporary tree.
    pub fn from_plan_in(
        a: Matrix<R>,
        b: Matrix<R>,
        compiled: Arc<StrassenPlan>,
        cutoff: usize,
        arena: Arc<ScratchArena>,
    ) -> Self {
        Self::from_plan_inner(a, b, compiled, cutoff, Some(arena))
    }

    fn from_plan_inner(
        a: Matrix<R>,
        b: Matrix<R>,
        compiled: Arc<StrassenPlan>,
        cutoff: usize,
        arena: Option<Arc<ScratchArena>>,
    ) -> Self {
        check_square(&a, &b);
        let mut operands: Vec<Option<(Matrix<R>, Matrix<R>)>> =
            Vec::with_capacity(compiled.nodes.len());
        operands.push(Some((a, b)));
        operands.resize_with(compiled.nodes.len(), || None);
        for idx in 0..compiled.nodes.len() {
            if compiled.nodes[idx].children.is_empty() {
                continue;
            }
            let (na, nb) = operands[idx]
                .take()
                .expect("a parent's operands are derived before its children's");
            for (&child, pair) in compiled.nodes[idx].children.iter().zip(strassen_operands(
                &na,
                &nb,
                arena.as_deref(),
            )) {
                operands[child] = Some(pair);
            }
            // The parent's operands are fully consumed once its children are
            // materialised; recycle them for the next level's pairs.
            if let Some(arena) = &arena {
                arena.put_vec(na.into_vec());
                arena.put_vec(nb.into_vec());
            }
        }
        Self {
            results: (0..compiled.nodes.len())
                .map(|_| Mutex::new(None))
                .collect(),
            operands,
            compiled,
            cutoff,
            arena,
        }
    }

    /// The compiled (single-wave) schedule; jobs are leaf node indices.
    pub fn plan(&self) -> &Plan<usize> {
        &self.compiled.plan
    }

    /// The `(Sᵣ, Tᵣ)` operand pair bound to node `idx`, if that node kept
    /// its operands (assigned leaves do; expanded internal nodes do not).
    ///
    /// Used by the distributed backend to scatter each leaf's operands to
    /// the rank that multiplies it.
    pub fn leaf_operands(&self, idx: usize) -> Option<&(Matrix<R>, Matrix<R>)> {
        self.operands[idx].as_ref()
    }

    /// Install an externally-computed product for node `idx`, as if
    /// [`StrassenRun::step`] had run it.  The distributed backend gathers
    /// leaf products from the ranks and installs them here before
    /// [`StrassenRun::finish`] combines the tree.
    pub fn install_result(&self, idx: usize, product: Matrix<R>) {
        *self.results[idx].lock() = Some(product);
    }

    /// Multiply leaf `idx` with the sequential Strassen kernel.
    pub fn step(&self, _proc: paco_core::proc_list::ProcId, idx: &usize) {
        let (la, lb) = self.operands[*idx]
            .as_ref()
            .expect("assigned leaves keep their operands");
        let product = strassen_sequential_with_cutoff(la, lb, self.cutoff);
        *self.results[*idx].lock() = Some(product);
    }

    /// Phase 3: combine bottom-up.  Children always have larger indices than
    /// their parent, so a reverse index sweep combines every internal node
    /// after all of its children are ready.
    pub fn finish(self) -> Matrix<R> {
        let arena = self.arena.as_deref();
        if let Some(arena) = arena {
            // The leaves' operands were only needed by `step`; recycle them
            // before the combine sweep starts allocating.
            for (s, t) in self.operands.into_iter().flatten() {
                arena.put_vec(s.into_vec());
                arena.put_vec(t.into_vec());
            }
        }
        for idx in (0..self.compiled.nodes.len()).rev() {
            if self.compiled.nodes[idx].children.is_empty() {
                continue;
            }
            let ms: Vec<Matrix<R>> = self.compiled.nodes[idx]
                .children
                .iter()
                .map(|&c| {
                    self.results[c]
                        .lock()
                        .take()
                        .expect("child product must be available before combining")
                })
                .collect();
            let combined = strassen_combine(&ms, arena);
            if let Some(arena) = arena {
                for m in ms {
                    arena.put_vec(m.into_vec());
                }
            }
            *self.results[idx].lock() = Some(combined);
        }
        self.results[0]
            .lock()
            .take()
            .expect("root product must exist after combination")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::co_mm::mm_reference;
    use paco_core::workload::{random_matrix_f64, random_matrix_wrapping};
    use paco_runtime::WorkerPool;

    /// Prepare-and-run helper standing in for the removed pool-threading
    /// wrappers; real callers go through `paco_service::Session`.
    fn strassen_paco_with<R: Ring>(
        a: &Matrix<R>,
        b: &Matrix<R>,
        pool: &WorkerPool,
        opts: StrassenOptions,
    ) -> Matrix<R> {
        let run = StrassenRun::prepare(a.clone(), b.clone(), pool.p(), opts);
        run.plan().execute(pool, |proc, idx| run.step(proc, idx));
        run.finish()
    }

    #[test]
    fn sequential_matches_reference_exact_ring() {
        for &n in &[1usize, 2, 8, 17, 64, 96, 128] {
            let a = random_matrix_wrapping(n, n, n as u64);
            let b = random_matrix_wrapping(n, n, n as u64 + 99);
            let expect = mm_reference(&a, &b);
            let got = strassen_sequential_with_cutoff(&a, &b, 8);
            assert_eq!(expect, got, "n={n}");
        }
    }

    #[test]
    fn sequential_matches_reference_f64_within_tolerance() {
        let n = 128;
        let a = random_matrix_f64(n, n, 1);
        let b = random_matrix_f64(n, n, 2);
        let expect = mm_reference(&a, &b);
        let got = strassen_sequential_with_cutoff(&a, &b, 16);
        assert!(
            expect.approx_eq(&got, 1e-9),
            "max diff {}",
            expect.max_abs_diff(&got)
        );
    }

    #[test]
    fn po_matches_reference() {
        let n = 160; // divisible by 2 several times, ends at odd 5 -> fallback path
        let a = random_matrix_wrapping(n, n, 5);
        let b = random_matrix_wrapping(n, n, 6);
        assert_eq!(mm_reference(&a, &b), strassen_po_with_cutoff(&a, &b, 16));
    }

    #[test]
    fn paco_matches_reference_for_arbitrary_p_including_primes() {
        let n = 256;
        let a = random_matrix_wrapping(n, n, 7);
        let b = random_matrix_wrapping(n, n, 8);
        let expect = mm_reference(&a, &b);
        for p in [1usize, 2, 3, 5, 7, 11] {
            let pool = WorkerPool::new(p);
            let opts = StrassenOptions {
                cutoff: 16,
                parallel_base: 32,
                gamma: None,
            };
            let got = strassen_paco_with(&a, &b, &pool, opts);
            assert_eq!(expect, got, "p={p}");
        }
    }

    #[test]
    fn const_pieces_matches_reference_and_limits_pieces() {
        let n = 256;
        let a = random_matrix_wrapping(n, n, 9);
        let b = random_matrix_wrapping(n, n, 10);
        let expect = mm_reference(&a, &b);
        let pool = WorkerPool::new(5);
        for gamma in [1usize, 2, 8] {
            let opts = StrassenOptions {
                gamma: Some(gamma),
                ..StrassenOptions::default()
            };
            let got = strassen_paco_with(&a, &b, &pool, opts);
            assert_eq!(expect, got, "gamma={gamma}");
        }
    }

    #[test]
    fn odd_and_non_power_of_two_sizes_fall_back_gracefully() {
        for &n in &[63usize, 100, 130] {
            let a = random_matrix_wrapping(n, n, 11);
            let b = random_matrix_wrapping(n, n, 12);
            let expect = mm_reference(&a, &b);
            assert_eq!(
                expect,
                strassen_sequential_with_cutoff(&a, &b, 16),
                "seq n={n}"
            );
            let pool = WorkerPool::new(3);
            let opts = StrassenOptions {
                cutoff: 16,
                parallel_base: 32,
                gamma: None,
            };
            assert_eq!(
                expect,
                strassen_paco_with(&a, &b, &pool, opts),
                "paco n={n}"
            );
        }
    }

    #[test]
    fn f64_paco_strassen_precision() {
        let n = 256;
        let a = random_matrix_f64(n, n, 21);
        let b = random_matrix_f64(n, n, 22);
        let expect = mm_reference(&a, &b);
        let pool = WorkerPool::new(4);
        let got = strassen_paco_with(&a, &b, &pool, StrassenOptions::default());
        assert!(
            expect.approx_eq(&got, 1e-8),
            "max diff {}",
            expect.max_abs_diff(&got)
        );
    }
}
