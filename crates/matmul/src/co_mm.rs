//! Sequential cache-oblivious matrix multiplication (Lemma 8, Frigo et al.).
//!
//! `CO-MM` recursively halves the *longest* dimension of the `n × m × k`
//! computation cuboid until every dimension is at most [`MM_BASE`], then calls
//! the shared leaf kernel.  Splitting the `k` (height) dimension produces two
//! multiplications that accumulate into the same output; sequentially they
//! simply run one after the other.  The recursion incurs
//! `O(1 + (nm + nk + mk)/L + nmk/(L√Z))` cache misses without knowing `Z` or
//! `L` — the optimal sequential bound every parallel variant builds on.

use crate::kernel::{mm_base, MM_BASE};
use paco_core::matrix::{MatMut, MatRef, Matrix};
use paco_core::semiring::Semiring;

/// Reference semiring matrix product `C = A ⊗ B` computed with the plain
/// triple loop; ground truth for the tests of every other variant.
pub fn mm_reference<S: Semiring>(a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    mm_base(&mut c.as_mut(), &a.as_ref(), &b.as_ref());
    c
}

/// `C += A ⊗ B`, cache-obliviously, with base-case threshold `cutoff`.
pub fn co_mm_with_cutoff<S: Semiring>(
    mut c: MatMut<'_, S>,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    cutoff: usize,
) {
    let n = c.rows();
    let m = c.cols();
    let k = a.cols();
    debug_assert_eq!(a.rows(), n);
    debug_assert_eq!(b.rows(), k);
    debug_assert_eq!(b.cols(), m);
    if n == 0 || m == 0 || k == 0 {
        return;
    }
    if n <= cutoff && m <= cutoff && k <= cutoff {
        mm_base(&mut c, &a, &b);
        return;
    }
    // Split the longest dimension in half (X = n, Y = m, Z = k).
    if n >= m && n >= k {
        let half = n / 2;
        let (a1, a2) = a.split_rows(half);
        let (c1, c2) = c.split_rows(half);
        co_mm_with_cutoff(c1, a1, b, cutoff);
        co_mm_with_cutoff(c2, a2, b, cutoff);
    } else if m >= k {
        let half = m / 2;
        let (b1, b2) = b.split_cols(half);
        let (c1, c2) = c.split_cols(half);
        co_mm_with_cutoff(c1, a, b1, cutoff);
        co_mm_with_cutoff(c2, a, b2, cutoff);
    } else {
        let half = k / 2;
        let (a1, a2) = a.split_cols(half);
        let (b1, b2) = b.split_rows(half);
        co_mm_with_cutoff(c.rb(), a1, b1, cutoff);
        co_mm_with_cutoff(c, a2, b2, cutoff);
    }
}

/// `C += A ⊗ B` with the default base case ([`MM_BASE`]).
pub fn co_mm<S: Semiring>(c: MatMut<'_, S>, a: MatRef<'_, S>, b: MatRef<'_, S>) {
    co_mm_with_cutoff(c, a, b, MM_BASE);
}

/// Convenience wrapper: allocate the output and compute `C = A ⊗ B`
/// cache-obliviously.
pub fn co_mm_alloc<S: Semiring>(a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    co_mm(c.as_mut(), a.as_ref(), b.as_ref());
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::semiring::{MinPlus, WrappingRing};
    use paco_core::workload::{random_matrix_f64, random_matrix_wrapping};

    #[test]
    fn matches_reference_on_square_f64() {
        for &n in &[1usize, 7, 16, 65, 130] {
            let a = random_matrix_f64(n, n, n as u64);
            let b = random_matrix_f64(n, n, n as u64 + 1);
            let expect = mm_reference(&a, &b);
            let got = co_mm_alloc(&a, &b);
            assert!(expect.approx_eq(&got, 1e-9), "n={n}");
        }
    }

    #[test]
    fn matches_reference_on_rectangular_exact_ring() {
        for &(n, m, k) in &[
            (3usize, 70usize, 9usize),
            (128, 1, 17),
            (33, 65, 129),
            (5, 5, 200),
        ] {
            let a = random_matrix_wrapping(n, k, 7);
            let b = random_matrix_wrapping(k, m, 8);
            let expect = mm_reference(&a, &b);
            let got = co_mm_alloc(&a, &b);
            assert_eq!(expect, got, "n={n} m={m} k={k}");
        }
    }

    #[test]
    fn tiny_cutoff_still_correct() {
        let a = random_matrix_wrapping(37, 23, 11);
        let b = random_matrix_wrapping(23, 41, 12);
        let expect = mm_reference(&a, &b);
        let mut c = Matrix::zeros(37, 41);
        co_mm_with_cutoff(c.as_mut(), a.as_ref(), b.as_ref(), 1);
        assert_eq!(expect, c);
    }

    #[test]
    fn accumulates_instead_of_overwriting() {
        let a = random_matrix_wrapping(16, 16, 3);
        let b = random_matrix_wrapping(16, 16, 4);
        let mut c = Matrix::filled(16, 16, WrappingRing(5));
        co_mm(c.as_mut(), a.as_ref(), b.as_ref());
        let mut expect = Matrix::filled(16, 16, WrappingRing(5));
        mm_base(&mut expect.as_mut(), &a.as_ref(), &b.as_ref());
        assert_eq!(c, expect);
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_matrix_f64(48, 48, 9);
        let id: Matrix<f64> = Matrix::identity(48);
        let c = co_mm_alloc(&a, &id);
        assert!(c.approx_eq(&a, 1e-12));
        let c = co_mm_alloc(&id, &a);
        assert!(c.approx_eq(&a, 1e-12));
    }

    #[test]
    fn works_on_tropical_semiring() {
        let n = 20;
        let a = Matrix::from_fn(n, n, |i, j| MinPlus(((i * 7 + j * 3) % 10) as f64));
        let b = Matrix::from_fn(n, n, |i, j| MinPlus(((i * 5 + j * 11) % 13) as f64));
        let expect = mm_reference(&a, &b);
        let got = co_mm_alloc(&a, &b);
        assert_eq!(expect, got);
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let a: Matrix<f64> = Matrix::zeros(0, 4);
        let b: Matrix<f64> = Matrix::zeros(4, 3);
        let c = co_mm_alloc(&a, &b);
        assert_eq!(c.rows(), 0);
        assert_eq!(c.cols(), 3);
    }
}
