//! PACO rectangular matrix multiplication (Sect. III-E).
//!
//! Two faces of the same idea:
//!
//! * [`plan_paco_mm`] — the *general* PACO MM partitioning of Theorem 9: the
//!   computation cuboid `n × m × k` is cut in half along its longest dimension,
//!   level by level, by the pruned BFS traversal; every processor ends up with
//!   a geometrically decreasing sequence of cuboids whose total volume is
//!   `Θ(nmk/p)` and whose surface area matches the communication lower bound.
//!   The function returns the assignment so tests, the scaling experiment and
//!   the ablation bench can inspect the balance directly.
//!
//! * [`MmRun`] / [`paco_mm_1piece_with`] — the executable MM-1-PIECE
//!   algorithm of Corollary 10 (Fig. 8), the variant the paper benchmarks
//!   against MKL: processor lists are split `⌊p/2⌋ : ⌈p/2⌉` and the cuboid is
//!   split on its longest dimension in the same ratio, until a single
//!   processor remains and runs the sequential cache-oblivious kernel.  A
//!   height (`k`) cut allocates a temporary output and merges with a parallel
//!   addition afterwards, exactly as lines 27–37 of Fig. 7 / Fig. 8 describe.
//!   Run it through `paco_service::Session` with the `MatMul` request.
//!
//! Since PR 3 the 1-PIECE recursion is compiled by [`plan_mm_1piece`] into the
//! runtime's wave-based [`Plan`] IR instead of driving the pool with `fork2`:
//! the recursion is replayed symbolically, leaves and reduction adds become
//! [`MmJob`] descriptors (block coordinates into the output and a temporary
//! arena sized at plan time), and the executor interprets them against
//! `UnsafeCell`-backed [`SharedGrid`] storage, rebuilding `MatMut`/`MatRef`
//! windows per job.  Jobs are plain data, so the leaf kernel call is fully
//! monomorphized — no boxed closures, no virtual dispatch on the hot path —
//! and the same plan could be replayed sequentially step by step.
//!
//! The same recursion, parameterised by throughput fractions and a leaf
//! throttle, also implements the heterogeneous variant (see [`crate::hetero`]).

use crate::co_mm::co_mm_with_cutoff;
use crate::kernel::MM_BASE;
use paco_core::matrix::{MatMut, MatRef, Matrix};
use paco_core::proc_list::{ProcId, ProcList};
use paco_core::semiring::Semiring;
use paco_core::shared::SharedGrid;
use paco_runtime::hetero::ThrottleSpec;
use paco_runtime::schedule::{Front, Plan, PlanBuilder};
use paco_runtime::{pruned_bfs, Assignment, DcNode, WorkerPool};
use std::sync::Arc;

/// A computation cuboid `n × m × k` (output `n × m`, inputs `n × k` and
/// `k × m`); the node type of the pruned BFS partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cuboid {
    /// Output rows.
    pub n: usize,
    /// Output columns.
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Base-case threshold (a cuboid stops dividing when all dims are ≤ this).
    pub base: usize,
}

impl Cuboid {
    /// Volume `n·m·k` — the computational weight.
    pub fn volume(&self) -> f64 {
        self.n as f64 * self.m as f64 * self.k as f64
    }

    /// Surface area `nm + nk + mk` — the communication weight.
    pub fn surface_area(&self) -> f64 {
        (self.n * self.m + self.n * self.k + self.m * self.k) as f64
    }
}

impl DcNode for Cuboid {
    fn divide(&self) -> Vec<Self> {
        let mut c1 = *self;
        let mut c2 = *self;
        if self.n >= self.m && self.n >= self.k {
            c1.n = self.n / 2;
            c2.n = self.n - self.n / 2;
        } else if self.m >= self.k {
            c1.m = self.m / 2;
            c2.m = self.m - self.m / 2;
        } else {
            c1.k = self.k / 2;
            c2.k = self.k - self.k / 2;
        }
        vec![c1, c2]
    }

    fn is_base(&self) -> bool {
        self.n.max(self.m).max(self.k) <= self.base
    }

    fn work(&self) -> f64 {
        self.volume()
    }

    fn surface(&self) -> f64 {
        self.surface_area()
    }
}

/// The general PACO MM partitioning (Theorem 9): pruned BFS of the
/// `n × m × k` cuboid over `p` processors.
pub fn plan_paco_mm(n: usize, m: usize, k: usize, p: usize) -> Assignment<Cuboid> {
    plan_paco_mm_with_base(n, m, k, p, MM_BASE)
}

/// [`plan_paco_mm`] with an explicit base-case threshold.
pub fn plan_paco_mm_with_base(
    n: usize,
    m: usize,
    k: usize,
    p: usize,
    base: usize,
) -> Assignment<Cuboid> {
    pruned_bfs(Cuboid { n, m, k, base }, p)
}

/// How the 1-PIECE recursion splits work between the two halves of a processor
/// list, and whether leaves emulate slower cores.
#[derive(Debug, Clone)]
pub struct MmConfig {
    /// Per-processor load fractions (length = total `p`); `None` means split by
    /// processor count (the homogeneous ⌊p/2⌋:⌈p/2⌉ rule).
    pub fractions: Option<Vec<f64>>,
    /// Leaf throttle emulating heterogeneous cores; `None` means no throttling.
    pub throttle: Option<ThrottleSpec>,
    /// Base-case threshold handed to the sequential kernel.
    pub cutoff: usize,
}

impl Default for MmConfig {
    fn default() -> Self {
        Self {
            fractions: None,
            throttle: None,
            cutoff: MM_BASE,
        }
    }
}

impl MmConfig {
    /// The relative load share of processors `[lo, hi)`.
    fn share(&self, list: ProcList) -> f64 {
        match &self.fractions {
            Some(f) => list.ids().map(|i| f[i]).sum(),
            None => list.len() as f64,
        }
    }
}

/// A rectangular block: `rows × cols` cells starting at `(r0, c0)` of its
/// parent matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// First row.
    pub r0: usize,
    /// First column.
    pub c0: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Rect {
    fn split_rows(self, at: usize) -> (Rect, Rect) {
        (
            Rect { rows: at, ..self },
            Rect {
                r0: self.r0 + at,
                rows: self.rows - at,
                ..self
            },
        )
    }

    fn split_cols(self, at: usize) -> (Rect, Rect) {
        (
            Rect { cols: at, ..self },
            Rect {
                c0: self.c0 + at,
                cols: self.cols - at,
                ..self
            },
        )
    }
}

/// An output block: which buffer (`0` = the real output `C`, `i + 1` =
/// temporary `i` of the plan's arena) and which rectangle of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRef {
    /// Buffer id (`0` = `C`, else temporary `buf - 1`).
    pub buf: usize,
    /// The block's rectangle within that buffer.
    pub rect: Rect,
}

/// One step of the compiled MM-1-PIECE schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmJob {
    /// `c += A[a] ⊗ B[b]` with the sequential cache-oblivious kernel.
    Leaf {
        /// Output block.
        c: BlockRef,
        /// Block of the input matrix `A`.
        a: Rect,
        /// Block of the input matrix `B`.
        b: Rect,
    },
    /// Element-wise reduction `c += d` (one row band of a height cut's
    /// temporary, the "parallel for" of Fig. 7 lines 35–36).
    Add {
        /// Destination band.
        c: BlockRef,
        /// Source band (same shape).
        d: BlockRef,
    },
}

/// The compiled MM-1-PIECE schedule: the wave plan plus the shapes of the
/// temporaries its height cuts need (allocated fresh by the executor).
#[derive(Debug, Clone)]
pub struct MmPlan {
    /// The executable schedule.
    pub plan: Plan<MmJob>,
    /// `temps[i]` is the `(rows, cols)` shape of temporary `i`.
    pub temps: Vec<(usize, usize)>,
}

/// Compile the 1-PIECE recursion of Fig. 8 (plus the Fig. 7 height-cut
/// reduction) for a `C = A(n×k) ⊗ B(k×m)` product on `p` processors.
///
/// Only [`MmConfig::fractions`] influences the schedule (it decides the cut
/// ratios); the cutoff and throttle are execution-time concerns.
pub fn plan_mm_1piece(n: usize, m: usize, k: usize, p: usize, cfg: &MmConfig) -> MmPlan {
    let mut planner = MmPlanner {
        b: PlanBuilder::new(p),
        temps: Vec::new(),
        cfg,
    };
    let front = planner.b.root();
    planner.recurse(
        &front,
        ProcList::all(p),
        BlockRef {
            buf: 0,
            rect: Rect {
                r0: 0,
                c0: 0,
                rows: n,
                cols: m,
            },
        },
        Rect {
            r0: 0,
            c0: 0,
            rows: n,
            cols: k,
        },
        Rect {
            r0: 0,
            c0: 0,
            rows: k,
            cols: m,
        },
    );
    MmPlan {
        plan: planner.b.finish(),
        temps: planner.temps,
    }
}

struct MmPlanner<'a> {
    b: PlanBuilder<MmJob>,
    temps: Vec<(usize, usize)>,
    cfg: &'a MmConfig,
}

impl MmPlanner<'_> {
    fn recurse(&mut self, front: &Front, procs: ProcList, c: BlockRef, a: Rect, b: Rect) -> Front {
        let n = c.rect.rows;
        let m = c.rect.cols;
        let k = a.cols;
        if n == 0 || m == 0 || k == 0 {
            return front.clone();
        }
        if procs.len() == 1 {
            return self.b.step(front, procs.only(), MmJob::Leaf { c, a, b });
        }

        let (p1, p2) = procs.split_even();
        let (share1, share2) = (self.cfg.share(p1), self.cfg.share(p2));
        let ratio = |dim: usize| -> usize {
            let cut = (dim as f64 * share1 / (share1 + share2)).round() as usize;
            cut.min(dim)
        };

        if n >= m && n >= k {
            // Cut on X (rows of A and C).
            let cut = ratio(n);
            let (a1, a2) = a.split_rows(cut);
            let (c1, c2) = c.rect.split_rows(cut);
            let left = self.recurse(front, p1, BlockRef { rect: c1, ..c }, a1, b);
            let right = self.recurse(front, p2, BlockRef { rect: c2, ..c }, a2, b);
            left.join(&right)
        } else if m >= k {
            // Cut on Y (columns of B and C).
            let cut = ratio(m);
            let (b1, b2) = b.split_cols(cut);
            let (c1, c2) = c.rect.split_cols(cut);
            let left = self.recurse(front, p1, BlockRef { rect: c1, ..c }, a, b1);
            let right = self.recurse(front, p2, BlockRef { rect: c2, ..c }, a, b2);
            left.join(&right)
        } else {
            // Cut on Z (the reduction dimension): the upper half accumulates
            // into a temporary D which is then merged with a parallel addition.
            let cut = ratio(k);
            let (a1, a2) = a.split_cols(cut);
            let (b1, b2) = b.split_rows(cut);
            let tmp = self.temps.len();
            self.temps.push((n, m));
            let d = BlockRef {
                buf: tmp + 1,
                rect: Rect {
                    r0: 0,
                    c0: 0,
                    rows: n,
                    cols: m,
                },
            };
            let left = self.recurse(front, p1, c, a1, b1);
            let right = self.recurse(front, p2, d, a2, b2);
            let f = left.join(&right);
            self.parallel_add(&f, procs, c, d)
        }
    }

    /// `c += d`, spread row-wise over the processor list.
    fn parallel_add(&mut self, front: &Front, procs: ProcList, c: BlockRef, d: BlockRef) -> Front {
        let p = procs.len();
        let rows = c.rect.rows;
        let mut fronts = Vec::with_capacity(p);
        let mut c_rest = c.rect;
        let mut d_rest = d.rect;
        for (idx, proc) in procs.ids().enumerate() {
            let hi = (idx + 1) * rows / p;
            let lo = idx * rows / p;
            let take = hi - lo;
            let (c_band, c_next) = c_rest.split_rows(take);
            let (d_band, d_next) = d_rest.split_rows(take);
            c_rest = c_next;
            d_rest = d_next;
            if take > 0 {
                fronts.push(self.b.step(
                    front,
                    proc,
                    MmJob::Add {
                        c: BlockRef { rect: c_band, ..c },
                        d: BlockRef { rect: d_band, ..d },
                    },
                ));
            }
        }
        if fronts.is_empty() {
            front.clone()
        } else {
            Front::join_all(&fronts)
        }
    }
}

/// A prepared MM-1-PIECE instance: the compiled schedule plus the
/// `UnsafeCell`-backed output/temporary grids its jobs interpret.  Each job
/// rebuilds its disjoint window views, and the plan's wave discipline
/// provides the `SharedGrid` safety contract.  This is the unit the service
/// layer's `Session` schedules — alone, in batches, or mixed with other
/// workloads — and [`paco_mm_1piece_with`] is the borrowing variant over the
/// same interpreter.  Only [`MmConfig::fractions`] shapes the schedule, so
/// [`MmRun::from_plan`] can bind fresh operands to a shared, possibly cached
/// [`MmPlan`].
pub struct MmRun<S: Semiring> {
    a: Matrix<S>,
    b: Matrix<S>,
    cfg: MmConfig,
    compiled: Arc<MmPlan>,
    buffers: MmBuffers<S>,
}

/// The `UnsafeCell`-backed output and height-cut temporaries of one compiled
/// MM-1-PIECE schedule, with the job interpreter over them — shared between
/// the owning [`MmRun`] and the borrowing [`paco_mm_1piece_with`] path so
/// neither pays for the other's ownership model.
struct MmBuffers<S> {
    c_grid: SharedGrid<S>,
    temps: Vec<SharedGrid<S>>,
}

impl<S: Semiring> MmBuffers<S> {
    fn new(n: usize, m: usize, compiled: &MmPlan) -> Self {
        Self {
            c_grid: SharedGrid::new(n, m, S::zero()),
            temps: compiled
                .temps
                .iter()
                .map(|&(r, c)| SharedGrid::new(r, c, S::zero()))
                .collect(),
        }
    }

    fn grid_of(&self, buf: usize) -> &SharedGrid<S> {
        if buf == 0 {
            &self.c_grid
        } else {
            &self.temps[buf - 1]
        }
    }

    // SAFETY (both helpers): the rectangle lies inside the grid by
    // construction of the plan, and the plan's wave/FIFO ordering guarantees
    // that a mutable window is never aliased by a concurrent access.
    fn block_mut(&self, blk: &BlockRef) -> MatMut<'_, S> {
        let g = self.grid_of(blk.buf);
        unsafe {
            MatMut::from_raw_parts(
                g.cell_ptr(blk.rect.r0, blk.rect.c0),
                blk.rect.rows,
                blk.rect.cols,
                g.cols(),
            )
        }
    }

    fn block_ref(&self, blk: &BlockRef) -> MatRef<'_, S> {
        let g = self.grid_of(blk.buf);
        unsafe {
            MatRef::from_raw_parts(
                g.cell_ptr(blk.rect.r0, blk.rect.c0),
                blk.rect.rows,
                blk.rect.cols,
                g.cols(),
            )
        }
    }

    /// Interpret one job against the grids, reading inputs from `av`/`bv`.
    fn run_job(
        &self,
        proc: ProcId,
        job: &MmJob,
        av: &MatRef<'_, S>,
        bv: &MatRef<'_, S>,
        cfg: &MmConfig,
    ) {
        match job {
            MmJob::Leaf { c, a, b } => {
                let c_win = self.block_mut(c);
                let a_win = av.submatrix(a.r0, a.c0, a.rows, a.cols);
                let b_win = bv.submatrix(b.r0, b.c0, b.rows, b.cols);
                run_leaf(proc, c_win, a_win, b_win, cfg);
            }
            MmJob::Add { c, d } => {
                let mut c_win = self.block_mut(c);
                crate::kernel::mat_add_assign(&mut c_win, &self.block_ref(d));
            }
        }
    }

    fn into_output(self) -> Matrix<S> {
        Matrix::from_vec(
            self.c_grid.rows(),
            self.c_grid.cols(),
            self.c_grid.snapshot(),
        )
    }
}

fn check_mm_config(a_cols: usize, b_rows: usize, p: usize, cfg: &MmConfig) {
    assert_eq!(a_cols, b_rows, "inner dimensions must agree");
    if let Some(f) = &cfg.fractions {
        assert_eq!(f.len(), p, "fractions must cover every processor");
    }
    if let Some(t) = &cfg.throttle {
        assert_eq!(t.p(), p, "throttle must cover every processor");
    }
}

impl<S: Semiring> MmRun<S> {
    /// Compile `C = A ⊗ B` for `p` processors with an explicit configuration.
    pub fn prepare(a: Matrix<S>, b: Matrix<S>, p: usize, cfg: MmConfig) -> Self {
        check_mm_config(a.cols(), b.rows(), p, &cfg);
        let (n, m, k) = (a.rows(), b.cols(), a.cols());
        let compiled = Arc::new(plan_mm_1piece(n, m, k, p, &cfg));
        Self::from_plan(a, b, compiled, cfg)
    }

    /// Bind operands to an already-compiled (typically cached) plan.  The
    /// plan must have been produced by [`plan_mm_1piece`] for exactly these
    /// operand shapes and the same [`MmConfig::fractions`] (the cutoff and
    /// throttle are execution-time knobs and may differ).
    pub fn from_plan(a: Matrix<S>, b: Matrix<S>, compiled: Arc<MmPlan>, cfg: MmConfig) -> Self {
        let (n, m) = (a.rows(), b.cols());
        let buffers = MmBuffers::new(n, m, &compiled);
        Self {
            a,
            b,
            cfg,
            compiled,
            buffers,
        }
    }

    /// The compiled wave schedule.
    pub fn plan(&self) -> &Plan<MmJob> {
        &self.compiled.plan
    }

    /// Interpret one job against the shared grids.
    pub fn step(&self, proc: ProcId, job: &MmJob) {
        self.buffers
            .run_job(proc, job, &self.a.as_ref(), &self.b.as_ref(), &self.cfg);
    }

    /// Read the completed product off the output grid.
    pub fn finish(self) -> Matrix<S> {
        self.buffers.into_output()
    }

    /// Read one element of buffer `buf` (0 = the output `C`, `i+1` = temp
    /// buffer `i`).  Used by the distributed backend to pack exchange and
    /// gather messages out of a rank's private run state.
    pub fn buffer_get(&self, buf: usize, r: usize, c: usize) -> S {
        self.buffers.grid_of(buf).get(r, c)
    }

    /// Write one element of buffer `buf` (same numbering as
    /// [`MmRun::buffer_get`]).  Used by the distributed backend to unpack
    /// received ghost blocks into a rank's private run state.
    pub fn buffer_set(&self, buf: usize, r: usize, c: usize, v: S) {
        self.buffers.grid_of(buf).set(r, c, v);
    }
}

/// PACO MM-1-PIECE with an explicit configuration (fractions / throttle /
/// cutoff); the borrowing entry point shared with the heterogeneous variant
/// (no operand copies — the service layer's owning [`MmRun`] exists for
/// requests that bring their own matrices).
pub fn paco_mm_1piece_with<S: Semiring>(
    a: &Matrix<S>,
    b: &Matrix<S>,
    pool: &WorkerPool,
    cfg: &MmConfig,
) -> Matrix<S> {
    check_mm_config(a.cols(), b.rows(), pool.p(), cfg);
    let (n, m, k) = (a.rows(), b.cols(), a.cols());
    let compiled = plan_mm_1piece(n, m, k, pool.p(), cfg);
    let buffers = MmBuffers::new(n, m, &compiled);
    let (av, bv) = (a.as_ref(), b.as_ref());
    compiled
        .plan
        .execute(pool, |proc, job| buffers.run_job(proc, job, &av, &bv, cfg));
    buffers.into_output()
}

/// Leaf execution: the sequential cache-oblivious kernel, optionally repeated
/// into a scratch buffer to emulate a slower core (the heterogeneous machine
/// substitution documented in DESIGN.md).
fn run_leaf<S: Semiring>(
    proc: ProcId,
    mut c: MatMut<'_, S>,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    cfg: &MmConfig,
) {
    co_mm_with_cutoff(c.rb(), a, b, cfg.cutoff);
    if let Some(throttle) = &cfg.throttle {
        let repeats = throttle.slowdown(proc).saturating_sub(1);
        if repeats > 0 {
            // Redo the same multiplication into scratch space so the extra work
            // is real but does not perturb the result.
            let mut scratch: Matrix<S> = Matrix::zeros(c.rows(), c.cols());
            for _ in 0..repeats {
                co_mm_with_cutoff(scratch.as_mut(), a, b, cfg.cutoff);
            }
            std::hint::black_box(&scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::co_mm::mm_reference;
    use paco_core::semiring::WrappingRing;
    use paco_core::workload::{random_matrix_f64, random_matrix_wrapping};

    /// Default-config wrapper standing in for the removed shim; real callers
    /// go through `paco_service::Session` with the `MatMul` request.
    fn paco_mm_1piece<S: Semiring>(a: &Matrix<S>, b: &Matrix<S>, pool: &WorkerPool) -> Matrix<S> {
        paco_mm_1piece_with(a, b, pool, &MmConfig::default())
    }

    #[test]
    fn matches_reference_for_various_p_exact() {
        let a = random_matrix_wrapping(97, 61, 1);
        let b = random_matrix_wrapping(61, 83, 2);
        let expect = mm_reference(&a, &b);
        for p in [1usize, 2, 3, 5, 7, 8] {
            let pool = WorkerPool::new(p);
            let got = paco_mm_1piece(&a, &b, &pool);
            assert_eq!(expect, got, "p={p}");
        }
    }

    #[test]
    fn matches_reference_f64_tall_and_wide() {
        for &(n, m, k) in &[
            (200usize, 40usize, 40usize),
            (40, 200, 40),
            (40, 40, 260),
            (128, 128, 128),
        ] {
            let a = random_matrix_f64(n, k, 11);
            let b = random_matrix_f64(k, m, 12);
            let expect = mm_reference(&a, &b);
            let pool = WorkerPool::new(4);
            let got = paco_mm_1piece(&a, &b, &pool);
            assert!(expect.approx_eq(&got, 1e-9), "n={n} m={m} k={k}");
        }
    }

    #[test]
    fn deep_k_dimension_exercises_temp_and_reduce() {
        // k dominates, so the top cut is a Z cut with the temporary + merge path.
        let a = random_matrix_wrapping(16, 30, 3);
        let b = random_matrix_wrapping(30, 16, 4);
        let big_k = 600;
        let a_big = random_matrix_wrapping(16, big_k, 5);
        let b_big = random_matrix_wrapping(big_k, 16, 6);
        let pool = WorkerPool::new(6);
        assert_eq!(mm_reference(&a, &b), paco_mm_1piece(&a, &b, &pool));
        assert_eq!(
            mm_reference(&a_big, &b_big),
            paco_mm_1piece(&a_big, &b_big, &pool)
        );
        // The plan really allocated temporaries for the height cuts.
        let plan = plan_mm_1piece(16, 16, big_k, 6, &MmConfig::default());
        assert!(!plan.temps.is_empty());
        assert!(plan.plan.iter().any(|s| matches!(s.job, MmJob::Add { .. })));
    }

    #[test]
    fn small_matrices_with_many_processors() {
        let a = random_matrix_wrapping(3, 2, 7);
        let b = random_matrix_wrapping(2, 3, 8);
        let pool = WorkerPool::new(8);
        assert_eq!(mm_reference(&a, &b), paco_mm_1piece(&a, &b, &pool));
    }

    #[test]
    fn custom_fractions_still_produce_correct_results() {
        let a = random_matrix_wrapping(120, 64, 9);
        let b = random_matrix_wrapping(64, 96, 10);
        let pool = WorkerPool::new(4);
        let cfg = MmConfig {
            fractions: Some(vec![0.55, 0.15, 0.15, 0.15]),
            throttle: None,
            cutoff: 32,
        };
        let got = paco_mm_1piece_with(&a, &b, &pool, &cfg);
        assert_eq!(mm_reference(&a, &b), got);
    }

    #[test]
    fn plan_assigns_every_processor_one_piece() {
        // 1-PIECE: with no height cut every processor owns exactly one leaf.
        let plan = plan_mm_1piece(256, 256, 64, 8, &MmConfig::default());
        let leaves = plan
            .plan
            .iter()
            .filter(|s| matches!(s.job, MmJob::Leaf { .. }))
            .count();
        assert_eq!(leaves, 8);
        assert!(plan.plan.steps_per_proc().iter().all(|&c| c >= 1));
    }

    #[test]
    fn plan_balances_volume_for_arbitrary_p() {
        for &p in &[2usize, 3, 5, 7, 11, 24, 72, 97] {
            let plan = plan_paco_mm(1024, 1024, 1024, p);
            let report = plan.report();
            assert!(
                (report.total_work - 1024f64.powi(3)).abs() / 1024f64.powi(3) < 1e-9,
                "p={p}: volume lost"
            );
            assert!(
                report.work_imbalance < 1.3,
                "p={p}: imbalance {}",
                report.work_imbalance
            );
            assert!(report.geometric_decrease, "p={p}");
        }
    }

    #[test]
    fn plan_surface_area_tracks_the_theorem9_shape() {
        // Case p <= n/m (tall cuboid): extra surface ~ p·m·k.
        let n = 4096;
        let m = 64;
        let k = 64;
        let p = 16; // p < n/m = 64
        let plan = plan_paco_mm_with_base(n, m, k, p, 16);
        let report = plan.report();
        let initial_surface = (n * m + n * k + m * k) as f64;
        let extra = report.total_surface - initial_surface;
        let predicted = (p * m * k) as f64;
        assert!(
            extra < 4.0 * predicted,
            "extra surface {extra} should be O(p·m·k) = {predicted}"
        );
    }

    #[test]
    fn wrapping_ring_zero_sized_inputs() {
        let a: Matrix<WrappingRing> = Matrix::zeros(0, 0);
        let b: Matrix<WrappingRing> = Matrix::zeros(0, 0);
        let pool = WorkerPool::new(2);
        let c = paco_mm_1piece(&a, &b, &pool);
        assert_eq!(c.rows(), 0);
    }
}
