//! # paco-matmul
//!
//! Rectangular semiring matrix multiplication and Strassen's algorithm from the
//! PACO paper (Sect. III-E and III-F), together with every baseline its
//! evaluation compares against.
//!
//! All parallel variants call the *same* sequential leaf kernels
//! ([`kernel::mm_base`] via [`co_mm::co_mm`]), exactly as the paper's
//! methodology requires ("all algorithms of the same problem call the same
//! kernel functions"), so measured differences come only from partitioning and
//! scheduling.
//!
//! | item | class | paper reference |
//! |---|---|---|
//! | [`co_mm::co_mm`] | CO | sequential cache-oblivious MM, Lemma 8 (Frigo et al.) |
//! | [`po::co2_mm`] | PO | depth-n 2-way divide-and-conquer on rayon, the "CO2" competitor of Fig. 11b |
//! | [`baseline::blocked_parallel_mm`] | vendor | statically tiled, rayon-parallel MM standing in for Intel MKL `dgemm` (Fig. 9/10/11a) |
//! | [`paco_mm::MmRun`] | PACO | MM-1-PIECE: one cuboid per processor, ⌊p/2⌋:⌈p/2⌉ processor-list splits (Corollary 10); run via `paco_service::Session` |
//! | [`paco_mm::plan_paco_mm`] | PACO | the general pruned-BFS cuboid partitioning of Theorem 9 (partition + balance analysis) |
//! | [`general::paco_mm_general`] | PACO | the general multi-cuboid algorithm of Fig. 7 executed end-to-end (private partial products + parallel reduction) |
//! | [`hetero::hetero_mm`] | PACO | throughput-proportional splitting for heterogeneous machines (Corollary 12 / Sect. IV-A) |
//! | [`strassen::strassen_sequential`] | CO | sequential Strassen with cutoff to CO-MM |
//! | [`strassen::strassen_po`] | PO | 7-way parallel recursion on rayon |
//! | [`strassen::StrassenRun`] | PACO | pruned-BFS placement of the 7-ary tree, incl. the CONST-PIECES `γ` bound (Theorem 13, Corollary 14); run via `paco_service::Session` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod co_mm;
pub mod general;
pub mod hetero;
pub mod kernel;
pub mod paco_mm;
pub mod po;
pub mod strassen;

pub use baseline::blocked_parallel_mm;
pub use co_mm::{co_mm, mm_reference};
pub use general::{paco_mm_general, plan_paco_mm_general, PlacedCuboid};
pub use hetero::hetero_mm;
pub use paco_mm::{
    plan_mm_1piece, plan_paco_mm, BlockRef, Cuboid, MmConfig, MmJob, MmPlan, MmRun, Rect,
};
pub use po::co2_mm;
pub use strassen::{
    plan_strassen, strassen_po, strassen_sequential, strassen_sequential_with_cutoff,
    StrassenOptions, StrassenPlan, StrassenRun,
};
