//! Sequential leaf kernels shared by every matrix-multiplication variant.
//!
//! The paper's experiments force all competitors to call the same sequential
//! kernels for base-case multiplications and additions (MKL `dgemm`/`daxpy` in
//! the paper; these hand-written loops here).  Keeping them in one module makes
//! that sharing explicit and gives the benchmark harness a single place to
//! calibrate per-core peak throughput for the `Rmax/Rpeak` experiment.

use paco_core::matrix::{MatMut, MatRef};
use paco_core::metrics::sched::kernel as kernel_metrics;
use paco_core::semiring::{Ring, Semiring};

/// Base-case threshold: recursions stop splitting a dimension once it is at
/// most this many elements (the paper's CO2 baseline uses 64 as well).  An
/// alias of the hoisted workspace default in [`paco_core::tuning`].
pub const MM_BASE: usize = paco_core::tuning::MM_BASE;

/// `C += A ⊗ B` with an i-k-j loop nest (good spatial locality on row-major
/// data).  This is the only place element arithmetic happens for the
/// classic-MM family.
///
/// Dispatch: a semiring with a
/// [`SpecializedKernel::mm_block`](paco_core::kernel::SpecializedKernel::mm_block)
/// override (only
/// `f64`, which routes to the runtime-selected [`paco_core::simd`]
/// microkernel) handles the whole leaf; everything else runs the generic
/// row-sliced loop.  Both paths produce bit-identical results to the
/// historical per-element loop — same i-k-j reduction order, same fused
/// `mul_add` — which `tests/kernel_agreement.rs` checks.
pub fn mm_base<S: Semiring>(c: &mut MatMut<'_, S>, a: &MatRef<'_, S>, b: &MatRef<'_, S>) {
    let n = c.rows();
    let m = c.cols();
    let k = a.cols();
    debug_assert_eq!(a.rows(), n);
    debug_assert_eq!(b.rows(), k);
    debug_assert_eq!(b.cols(), m);
    if S::mm_block(c, a, b) {
        kernel_metrics::record_mm_leaf(true);
        return;
    }
    for i in 0..n {
        let ar = a.row(i);
        let cr = c.row_mut(i);
        for (l, &ail) in ar.iter().enumerate() {
            let br = b.row(l);
            for (cj, &blj) in cr.iter_mut().zip(br) {
                *cj = Semiring::mul_add(*cj, ail, blj);
            }
        }
    }
    kernel_metrics::record_mm_leaf(false);
}

/// `C += D` element-wise (the reduction step after a height/Z cut).
///
/// Row-sliced: one bounds computation per row instead of per element, and a
/// slice loop the compiler can unroll/vectorize.
pub fn mat_add_assign<S: Semiring>(c: &mut MatMut<'_, S>, d: &MatRef<'_, S>) {
    debug_assert_eq!(c.rows(), d.rows());
    debug_assert_eq!(c.cols(), d.cols());
    for i in 0..c.rows() {
        let cr = c.row_mut(i);
        for (cj, &dj) in cr.iter_mut().zip(d.row(i)) {
            *cj = cj.add(dj);
        }
    }
}

/// `out = A ⊕ B` element-wise into a pre-sized output window.
pub fn mat_add_into<S: Semiring>(out: &mut MatMut<'_, S>, a: &MatRef<'_, S>, b: &MatRef<'_, S>) {
    debug_assert_eq!(a.rows(), b.rows());
    debug_assert_eq!(a.cols(), b.cols());
    debug_assert_eq!(out.rows(), a.rows());
    debug_assert_eq!(out.cols(), a.cols());
    for i in 0..a.rows() {
        let or = out.row_mut(i);
        for ((oj, &aj), &bj) in or.iter_mut().zip(a.row(i)).zip(b.row(i)) {
            *oj = aj.add(bj);
        }
    }
}

/// `out = A ⊖ B` element-wise (Strassen needs subtraction, hence [`Ring`]).
pub fn mat_sub_into<R: Ring>(out: &mut MatMut<'_, R>, a: &MatRef<'_, R>, b: &MatRef<'_, R>) {
    debug_assert_eq!(a.rows(), b.rows());
    debug_assert_eq!(a.cols(), b.cols());
    for i in 0..a.rows() {
        let or = out.row_mut(i);
        for ((oj, &aj), &bj) in or.iter_mut().zip(a.row(i)).zip(b.row(i)) {
            *oj = aj.sub(bj);
        }
    }
}

/// Copy `src` into `out` (used to seed Strassen's `S₃ = A₀₀`-style operands).
pub fn mat_copy_into<S: Semiring>(out: &mut MatMut<'_, S>, src: &MatRef<'_, S>) {
    out.copy_from(src);
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::matrix::Matrix;
    use paco_core::semiring::{MinPlus, WrappingRing};
    use paco_core::workload::random_matrix_f64;

    #[test]
    fn mm_base_small_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut c = Matrix::zeros(2, 2);
        mm_base(&mut c.as_mut(), &a.as_ref(), &b.as_ref());
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn mm_base_accumulates_into_existing_c() {
        let a = Matrix::from_vec(1, 1, vec![WrappingRing(3)]);
        let b = Matrix::from_vec(1, 1, vec![WrappingRing(4)]);
        let mut c = Matrix::from_vec(1, 1, vec![WrappingRing(100)]);
        mm_base(&mut c.as_mut(), &a.as_ref(), &b.as_ref());
        assert_eq!(c.get(0, 0), WrappingRing(112));
    }

    #[test]
    fn mm_base_rectangular_shapes() {
        // (2x3) * (3x4): compare against a manual triple loop.
        let a = random_matrix_f64(2, 3, 1);
        let b = random_matrix_f64(3, 4, 2);
        let mut c = Matrix::zeros(2, 4);
        mm_base(&mut c.as_mut(), &a.as_ref(), &b.as_ref());
        for i in 0..2 {
            for j in 0..4 {
                let mut acc = 0.0;
                for l in 0..3 {
                    acc += a.get(i, l) * b.get(l, j);
                }
                assert!((c.get(i, j) - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn min_plus_semiring_mm_computes_shortest_relaxation() {
        // Adjacency "distances": the (min,+) product gives 2-hop shortest paths.
        let inf = f64::INFINITY;
        let a = Matrix::from_vec(
            2,
            2,
            vec![MinPlus(0.0), MinPlus(1.0), MinPlus(inf), MinPlus(0.0)],
        );
        let mut c = Matrix::zeros(2, 2); // zeros = +inf under MinPlus
        mm_base(&mut c.as_mut(), &a.as_ref(), &a.as_ref());
        assert_eq!(c.get(0, 0), MinPlus(0.0));
        assert_eq!(c.get(0, 1), MinPlus(1.0));
        assert_eq!(c.get(1, 1), MinPlus(0.0));
        assert!(c.get(1, 0).0.is_infinite());
    }

    #[test]
    fn add_sub_copy_helpers() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let b = Matrix::from_fn(3, 3, |i, j| ((i * 3 + j) * 10) as f64);
        let mut sum = Matrix::zeros(3, 3);
        mat_add_into(&mut sum.as_mut(), &a.as_ref(), &b.as_ref());
        let mut diff = Matrix::zeros(3, 3);
        mat_sub_into(&mut diff.as_mut(), &b.as_ref(), &a.as_ref());
        let mut acc = a.clone();
        mat_add_assign(&mut acc.as_mut(), &b.as_ref());
        let mut copy = Matrix::zeros(3, 3);
        mat_copy_into(&mut copy.as_mut(), &a.as_ref());
        for i in 0..3 {
            for j in 0..3 {
                let v = (i * 3 + j) as f64;
                assert_eq!(sum.get(i, j), v + v * 10.0);
                assert_eq!(diff.get(i, j), v * 10.0 - v);
                assert_eq!(acc.get(i, j), v + v * 10.0);
                assert_eq!(copy.get(i, j), v);
            }
        }
    }
}
