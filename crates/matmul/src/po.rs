//! The "CO2" processor-oblivious baseline (Fig. 11b).
//!
//! The depth-`n` 2-way divide-and-conquer MM of Frigo & Strumpen / Blelloch et
//! al.: recursively split the longest dimension; splits of the two output
//! dimensions run their halves in parallel (`rayon::join`, i.e. randomized work
//! stealing with no processor knowledge), splits of the reduction dimension run
//! sequentially to avoid temporaries.  The base-case size is a tuning knob; the
//! paper used 64 after manual trials.

use crate::kernel::{mm_base, MM_BASE};
use paco_core::matrix::{MatMut, MatRef, Matrix};
use paco_core::semiring::Semiring;

/// `C += A ⊗ B` with the processor-oblivious 2-way recursion and base case
/// `cutoff`.
pub fn co2_mm_with_cutoff<S: Semiring>(
    mut c: MatMut<'_, S>,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    cutoff: usize,
) {
    let n = c.rows();
    let m = c.cols();
    let k = a.cols();
    if n == 0 || m == 0 || k == 0 {
        return;
    }
    if n <= cutoff && m <= cutoff && k <= cutoff {
        mm_base(&mut c, &a, &b);
        return;
    }
    if n >= m && n >= k {
        let half = n / 2;
        let (a1, a2) = a.split_rows(half);
        let (c1, c2) = c.split_rows(half);
        rayon::join(
            || co2_mm_with_cutoff(c1, a1, b, cutoff),
            || co2_mm_with_cutoff(c2, a2, b, cutoff),
        );
    } else if m >= k {
        let half = m / 2;
        let (b1, b2) = b.split_cols(half);
        let (c1, c2) = c.split_cols(half);
        rayon::join(
            || co2_mm_with_cutoff(c1, a, b1, cutoff),
            || co2_mm_with_cutoff(c2, a, b2, cutoff),
        );
    } else {
        // Reduction (Z) split: both halves write the same C, so they run in
        // sequence — this is what makes the algorithm depth-n rather than
        // depth-log²n, as in the paper's CO2 description.
        let half = k / 2;
        let (a1, a2) = a.split_cols(half);
        let (b1, b2) = b.split_rows(half);
        co2_mm_with_cutoff(c.rb(), a1, b1, cutoff);
        co2_mm_with_cutoff(c, a2, b2, cutoff);
    }
}

/// `C = A ⊗ B` with the default base case of 64 (allocating the output).
pub fn co2_mm<S: Semiring>(a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    co2_mm_with_cutoff(c.as_mut(), a.as_ref(), b.as_ref(), MM_BASE);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::co_mm::mm_reference;
    use paco_core::workload::{random_matrix_f64, random_matrix_wrapping};

    #[test]
    fn matches_reference_square() {
        for &n in &[1usize, 31, 64, 100, 200] {
            let a = random_matrix_f64(n, n, 2 * n as u64);
            let b = random_matrix_f64(n, n, 2 * n as u64 + 1);
            assert!(
                mm_reference(&a, &b).approx_eq(&co2_mm(&a, &b), 1e-9),
                "n={n}"
            );
        }
    }

    #[test]
    fn matches_reference_rectangular_exact() {
        for &(n, m, k) in &[(10usize, 150usize, 20usize), (130, 40, 70), (1, 200, 1)] {
            let a = random_matrix_wrapping(n, k, 5);
            let b = random_matrix_wrapping(k, m, 6);
            assert_eq!(mm_reference(&a, &b), co2_mm(&a, &b), "n={n} m={m} k={k}");
        }
    }

    #[test]
    fn small_cutoff_forces_deep_parallel_recursion() {
        let a = random_matrix_wrapping(90, 33, 1);
        let b = random_matrix_wrapping(33, 77, 2);
        let mut c = Matrix::zeros(90, 77);
        co2_mm_with_cutoff(c.as_mut(), a.as_ref(), b.as_ref(), 4);
        assert_eq!(mm_reference(&a, &b), c);
    }
}
