//! End-to-end agreement smoke: every workload adapter, run through the full
//! scatter → superstep → gather pipeline, must be bit-identical to the
//! shared-memory executor replaying the *same* plan.

use paco_core::machine::Placement;
use paco_core::matrix::Matrix;
use paco_core::semiring::BoolSemiring;
use paco_core::workload;
use paco_dist::{lower, run_lowered, FwDist, LcsDist, MmDist, StrassenDist};
use paco_dp::lcs::{plan_paco_lcs, LcsRun};
use paco_graph::{plan_fw, FwRun};
use paco_matmul::{plan_mm_1piece, plan_strassen, MmConfig, MmRun, StrassenOptions, StrassenRun};
use std::sync::Arc;

const RANKS: &[usize] = &[1, 2, 3, 4, 5, 8];

fn placement(ranks: usize) -> Placement {
    Placement::new(ranks, Placement::DEFAULT_BLOCK)
}

#[test]
fn mm_distributed_matches_local_bitwise() {
    let (n, m, k) = (48, 40, 56);
    let a = workload::random_matrix_f64(n, k, 11);
    let b = workload::random_matrix_f64(k, m, 12);
    let cfg = MmConfig::default();

    for &p in RANKS {
        let compiled = Arc::new(plan_mm_1piece(n, m, k, p, &cfg));

        let local = MmRun::from_plan(a.clone(), b.clone(), Arc::clone(&compiled), cfg.clone());
        for wave in compiled.plan.waves() {
            for step in wave {
                local.step(step.proc, &step.job);
            }
        }
        let want = local.finish();

        let pl = placement(p);
        let w = MmDist::new(a.clone(), b.clone(), Arc::clone(&compiled), cfg.clone());
        let sp = lower(&w, &compiled.plan, &pl);
        let (got, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);

        assert_eq!(stats.ranks, p);
        assert_eq!(stats.comm.supersteps as usize, compiled.plan.waves().len());
        for i in 0..n {
            for j in 0..m {
                assert!(
                    want.get(i, j).to_bits() == got.get(i, j).to_bits(),
                    "mm mismatch at ({i},{j}) for p={p}"
                );
            }
        }
    }
}

#[test]
fn fw_closure_distributed_matches_local_minplus_and_bool() {
    let n = 40;
    for &p in RANKS {
        let adj = workload::random_digraph(n, 0.3, 100, 21);
        let compiled = Arc::new(plan_fw(n, p, 8));
        let local = FwRun::from_plan(&adj, Arc::clone(&compiled), 8);
        for wave in compiled.plan.waves() {
            for step in wave {
                local.step(step.proc, &step.job);
            }
        }
        let want = local.finish();

        let pl = placement(p);
        let w = FwDist::new(adj.clone(), Arc::clone(&compiled), 8);
        let sp = lower(&w, &compiled.plan, &pl);
        let (got, _) = run_lowered(&w, &compiled.plan, &pl, &sp);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(want.get(i, j), got.get(i, j), "fw minplus ({i},{j}) p={p}");
            }
        }

        let reach: Matrix<BoolSemiring> = workload::random_adjacency(n, 0.15, 22);
        let localb = FwRun::from_plan(&reach, Arc::clone(&compiled), 8);
        for wave in compiled.plan.waves() {
            for step in wave {
                localb.step(step.proc, &step.job);
            }
        }
        let wantb = localb.finish();
        let wb = FwDist::new(reach.clone(), Arc::clone(&compiled), 8);
        let spb = lower(&wb, &compiled.plan, &pl);
        let (gotb, _) = run_lowered(&wb, &compiled.plan, &pl, &spb);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(wantb.get(i, j), gotb.get(i, j), "fw bool ({i},{j}) p={p}");
            }
        }
    }
}

#[test]
fn lcs_distributed_matches_local() {
    let a = workload::random_sequence(150, 4, 31);
    let b = workload::random_sequence(130, 4, 32);
    for &p in RANKS {
        let compiled = Arc::new(plan_paco_lcs(a.len(), b.len(), p, 16));
        let local = LcsRun::from_plan(a.clone(), b.clone(), Arc::clone(&compiled), 16);
        for wave in compiled.plan.waves() {
            for step in wave {
                local.step(step.proc, &step.job);
            }
        }
        let want = local.finish();

        let pl = placement(p);
        let w = LcsDist::new(a.clone(), b.clone(), Arc::clone(&compiled), 16);
        let sp = lower(&w, &compiled.plan, &pl);
        let (got, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
        assert_eq!(want, got, "lcs length p={p}");
        // Exactly one word comes back at gather: the answer.
        assert_eq!(stats.comm.gather_words, 1);
    }
}

#[test]
fn strassen_distributed_matches_local_bitwise() {
    let n = 64;
    let a = workload::random_matrix_f64(n, n, 41);
    let b = workload::random_matrix_f64(n, n, 42);
    let opts = StrassenOptions {
        cutoff: 16,
        ..Default::default()
    };
    for &p in RANKS {
        let compiled = Arc::new(plan_strassen(n, p, opts));
        let local = StrassenRun::from_plan(a.clone(), b.clone(), Arc::clone(&compiled), 16);
        for wave in compiled.plan.waves() {
            for step in wave {
                local.step(step.proc, &step.job);
            }
        }
        let want = local.finish();

        let pl = placement(p);
        let run = StrassenRun::from_plan(a.clone(), b.clone(), Arc::clone(&compiled), 16);
        let w = StrassenDist::new(run, 16);
        let sp = lower(&w, &compiled.plan, &pl);
        let (got, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
        // Leaves are independent: the whole run is scatter/compute/gather.
        assert_eq!(stats.comm.exchange_words, 0);
        assert_eq!(stats.comm.writeback_words, 0);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    want.get(i, j).to_bits() == got.get(i, j).to_bits(),
                    "strassen mismatch at ({i},{j}) for p={p}"
                );
            }
        }
    }
}
