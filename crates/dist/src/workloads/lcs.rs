//! LCS on the shared-nothing executor.
//!
//! The `(n+1) × (m+1)` DP table starts all-zero on every rank (a consistent
//! replica costing zero scatter words); the sequences ship once at scatter
//! time as exactly the deduplicated index ranges a rank's regions compare.
//! A region's cross-rank dataflow is its one-cell halo: the row strip above
//! it and the column strip left of it, which is what each wave's exchange
//! delivers before the `co_block` kernel fills the region in place.

use crate::exec::DistWorkload;
use crate::Region;
use paco_core::machine::Placement;
use paco_dp::lcs::{LcsRun, PacoLcsPlan};
use std::sync::Arc;

/// The LCS request bound for distributed execution: both sequences plus the
/// compiled (cached) wavefront plan.
pub struct LcsDist {
    a: Vec<u32>,
    b: Vec<u32>,
    compiled: Arc<PacoLcsPlan>,
    base: usize,
}

impl LcsDist {
    /// Bind `(a, b)` to an already-compiled plan (the same payload the
    /// local backend binds through `LcsRun::from_plan`).  Both sequences
    /// must be non-empty (the service falls back to the local backend for
    /// the degenerate cases).
    pub fn new(a: Vec<u32>, b: Vec<u32>, compiled: Arc<PacoLcsPlan>, base: usize) -> Self {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "degenerate LCS runs on the local backend"
        );
        Self {
            a,
            b,
            compiled,
            base,
        }
    }

    /// Merge the sorted half-open ranges a rank's regions need of one
    /// sequence, for exact (deduplicated) scatter word counting.
    fn merged(mut ranges: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        ranges.sort_unstable();
        let mut out: Vec<(usize, usize)> = Vec::new();
        for (s, e) in ranges {
            if s >= e {
                continue;
            }
            match out.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        out
    }
}

impl DistWorkload for LcsDist {
    type Job = usize;
    type Elem = u32;
    type RankInput = (Vec<u32>, Vec<u32>, u64);
    type RankState = LcsRun;
    type Gather = Option<u32>;
    type Output = u32;

    fn reads(&self, job: &usize) -> Vec<(usize, Region)> {
        let r = &self.compiled.regions[*job];
        let (rs, re) = (r.rows.start, r.rows.end);
        let (cs, ce) = (r.cols.start, r.cols.end);
        // Rows/cols are 1-based, so the halo strips start at index ≥ 0: the
        // row above (corner included) and the column to the left.
        vec![
            (0, Region::new(rs - 1..rs, cs - 1..ce)),
            (0, Region::new(rs..re, cs - 1..cs)),
        ]
    }

    fn writes(&self, job: &usize) -> Vec<(usize, Region)> {
        let r = &self.compiled.regions[*job];
        vec![(0, Region::new(r.rows.clone(), r.cols.clone()))]
    }

    fn scatter(
        &self,
        _placement: &Placement,
        _rank: usize,
        jobs: &[usize],
    ) -> ((Vec<u32>, Vec<u32>, u64), u64) {
        // `co_block` compares `a[i-1]` for table rows `i` and `b[j-1]` for
        // table columns `j`: ship exactly those index ranges.
        let a_ranges = Self::merged(
            jobs.iter()
                .map(|&j| {
                    let r = &self.compiled.regions[j];
                    (r.rows.start - 1, r.rows.end - 1)
                })
                .collect(),
        );
        let b_ranges = Self::merged(
            jobs.iter()
                .map(|&j| {
                    let r = &self.compiled.regions[j];
                    (r.cols.start - 1, r.cols.end - 1)
                })
                .collect(),
        );
        let mut local_a = vec![0u32; self.a.len()];
        let mut local_b = vec![0u32; self.b.len()];
        let mut words = 0u64;
        for &(s, e) in &a_ranges {
            words += (e - s) as u64;
            local_a[s..e].copy_from_slice(&self.a[s..e]);
        }
        for &(s, e) in &b_ranges {
            words += (e - s) as u64;
            local_b[s..e].copy_from_slice(&self.b[s..e]);
        }
        ((local_a, local_b, words), words)
    }

    fn init_state(
        &self,
        _placement: &Placement,
        _rank: usize,
        input: (Vec<u32>, Vec<u32>, u64),
    ) -> LcsRun {
        let (local_a, local_b, _) = input;
        LcsRun::from_plan(local_a, local_b, Arc::clone(&self.compiled), self.base)
    }

    fn run_step(&self, rank: usize, state: &mut LcsRun, job: &usize) {
        state.step(rank, job);
    }

    fn pack(&self, state: &LcsRun, _buf: usize, region: Region, out: &mut Vec<u32>) {
        let grid = state.table().grid();
        for i in region.r0..region.r1 {
            for j in region.c0..region.c1 {
                out.push(grid.get(i, j));
            }
        }
    }

    fn unpack(&self, state: &mut LcsRun, _buf: usize, region: Region, data: &[u32]) {
        let grid = state.table().grid();
        let mut data = data.iter();
        for i in region.r0..region.r1 {
            for j in region.c0..region.c1 {
                grid.set(i, j, *data.next().expect("part carries its region"));
            }
        }
    }

    fn gather(&self, placement: &Placement, rank: usize, state: LcsRun) -> (Option<u32>, u64) {
        // The answer is one word: the bottom-right cell, gathered from the
        // rank that owns it.
        if placement.owner(self.a.len(), self.b.len()) == rank {
            (Some(state.table().lcs_length()), 1)
        } else {
            (None, 0)
        }
    }

    fn finish(&self, _placement: &Placement, gathers: Vec<Option<u32>>) -> u32 {
        gathers
            .into_iter()
            .flatten()
            .next()
            .expect("exactly one rank owns the final cell")
    }
}
