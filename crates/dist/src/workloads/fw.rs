//! Floyd–Warshall closure on the shared-nothing executor.
//!
//! Each rank owns a private [`FwRun`] over a full-shape local table whose
//! owned cells hold the adjacency matrix and whose ghost cells start at
//! `⊕`-identity; every wave's exchange overwrites exactly the ghost cells
//! the rank's A/B/C/D leaves are about to read with the owners'
//! authoritative values, so the leaf kernels never see a stale word.

use super::owned_cells;
use crate::exec::DistWorkload;
use crate::Region;
use paco_core::machine::Placement;
use paco_core::matrix::Matrix;
use paco_core::semiring::IdempotentSemiring;
use paco_graph::{FwPlan, FwRun, LeafCall};
use std::sync::Arc;

/// The FW closure request bound for distributed execution: the adjacency
/// matrix plus the compiled (cached) shared-memory plan.
pub struct FwDist<S: IdempotentSemiring> {
    adj: Matrix<S>,
    compiled: Arc<FwPlan>,
    base: usize,
}

impl<S: IdempotentSemiring> FwDist<S> {
    /// Bind `adj` to an already-compiled plan (the same payload the local
    /// backend binds through `FwRun::from_plan`).
    pub fn new(adj: Matrix<S>, compiled: Arc<FwPlan>, base: usize) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "closure needs a square matrix");
        Self {
            adj,
            compiled,
            base,
        }
    }

    fn n(&self) -> usize {
        self.adj.rows()
    }
}

impl<S: IdempotentSemiring> DistWorkload for FwDist<S> {
    type Job = LeafCall;
    type Elem = S;
    type RankInput = Vec<S>;
    type RankState = FwRun<S>;
    type Gather = Vec<S>;
    type Output = Matrix<S>;

    fn reads(&self, job: &LeafCall) -> Vec<(usize, Region)> {
        job.read_rects()
            .into_iter()
            .map(|(rows, cols)| (0, Region::new(rows, cols)))
            .collect()
    }

    fn writes(&self, job: &LeafCall) -> Vec<(usize, Region)> {
        let (rows, cols) = job.write_rect();
        vec![(0, Region::new(rows, cols))]
    }

    fn scatter(&self, placement: &Placement, rank: usize, _jobs: &[LeafCall]) -> (Vec<S>, u64) {
        let n = self.n();
        let cells: Vec<S> = owned_cells(placement, rank, n, n)
            .map(|(i, j)| self.adj.get(i, j))
            .collect();
        let words = cells.len() as u64;
        (cells, words)
    }

    fn init_state(&self, placement: &Placement, rank: usize, input: Vec<S>) -> FwRun<S> {
        let n = self.n();
        let mut local = Matrix::filled(n, n, S::zero());
        let mut cells = input.into_iter();
        for (i, j) in owned_cells(placement, rank, n, n) {
            local.set(i, j, cells.next().expect("scatter covers every owned cell"));
        }
        FwRun::from_plan(&local, Arc::clone(&self.compiled), self.base)
    }

    fn run_step(&self, rank: usize, state: &mut FwRun<S>, job: &LeafCall) {
        state.step(rank, job);
    }

    fn pack(&self, state: &FwRun<S>, _buf: usize, region: Region, out: &mut Vec<S>) {
        let grid = state.table().grid();
        for i in region.r0..region.r1 {
            for j in region.c0..region.c1 {
                out.push(grid.get(i, j));
            }
        }
    }

    fn unpack(&self, state: &mut FwRun<S>, _buf: usize, region: Region, data: &[S]) {
        let grid = state.table().grid();
        let mut data = data.iter();
        for i in region.r0..region.r1 {
            for j in region.c0..region.c1 {
                grid.set(i, j, *data.next().expect("part carries its full region"));
            }
        }
    }

    fn gather(&self, placement: &Placement, rank: usize, state: FwRun<S>) -> (Vec<S>, u64) {
        let n = self.n();
        let grid_owner = state.table();
        let cells: Vec<S> = owned_cells(placement, rank, n, n)
            .map(|(i, j)| grid_owner.grid().get(i, j))
            .collect();
        let words = cells.len() as u64;
        (cells, words)
    }

    fn finish(&self, placement: &Placement, gathers: Vec<Vec<S>>) -> Matrix<S> {
        let n = self.n();
        let mut fragments: Vec<_> = gathers.into_iter().map(Vec::into_iter).collect();
        Matrix::from_fn(n, n, |i, j| {
            fragments[placement.owner(i, j)]
                .next()
                .expect("gather covers every owned cell")
        })
    }
}
