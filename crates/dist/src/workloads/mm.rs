//! MM-1-PIECE on the shared-nothing executor.
//!
//! `A` and `B` are read-only, so they ship once at scatter time: each rank
//! receives exactly the deduplicated `A`/`B` panels its leaves multiply
//! (the `surface/p + extra` term of `paco_mm_distributed`) installed into
//! full-shape zero matrices.  Output and temporary blocks are owned
//! block-cyclically; a leaf's accumulation `c += a ⊗ b` exchanges the
//! current `c` block in, adds its contribution locally, and writes the
//! block back to its owner — additions therefore happen in plan wave order,
//! exactly as the shared-memory executor orders them, so sums are
//! bit-identical even over `f64`.

use super::owned_cells;
use crate::exec::DistWorkload;
use crate::Region;
use paco_core::machine::Placement;
use paco_core::matrix::Matrix;
use paco_core::semiring::Semiring;
use paco_matmul::{MmConfig, MmJob, MmPlan, MmRun};
use std::collections::BTreeSet;
use std::sync::Arc;

fn rect_region(r: paco_matmul::Rect) -> Region {
    Region {
        r0: r.r0,
        r1: r.r0 + r.rows,
        c0: r.c0,
        c1: r.c0 + r.cols,
    }
}

/// The MM request bound for distributed execution: both operands plus the
/// compiled (cached) MM-1-PIECE plan.
pub struct MmDist<S: Semiring> {
    a: Matrix<S>,
    b: Matrix<S>,
    compiled: Arc<MmPlan>,
    cfg: MmConfig,
}

impl<S: Semiring> MmDist<S> {
    /// Bind `a ⊗ b` to an already-compiled plan (the same payload the local
    /// backend binds through `MmRun::from_plan`).
    pub fn new(a: Matrix<S>, b: Matrix<S>, compiled: Arc<MmPlan>, cfg: MmConfig) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        Self {
            a,
            b,
            compiled,
            cfg,
        }
    }
}

impl<S: Semiring> DistWorkload for MmDist<S> {
    type Job = MmJob;
    type Elem = S;
    type RankInput = (Matrix<S>, Matrix<S>);
    type RankState = MmRun<S>;
    type Gather = Vec<S>;
    type Output = Matrix<S>;

    fn reads(&self, job: &MmJob) -> Vec<(usize, Region)> {
        match job {
            // A leaf accumulates into its output block, so the current block
            // value is part of its read footprint; the a/b panels are local
            // from scatter time and never exchanged.
            MmJob::Leaf { c, .. } => vec![(c.buf, rect_region(c.rect))],
            MmJob::Add { c, d } => vec![(c.buf, rect_region(c.rect)), (d.buf, rect_region(d.rect))],
        }
    }

    fn writes(&self, job: &MmJob) -> Vec<(usize, Region)> {
        match job {
            MmJob::Leaf { c, .. } | MmJob::Add { c, .. } => vec![(c.buf, rect_region(c.rect))],
        }
    }

    fn scatter(
        &self,
        _placement: &Placement,
        _rank: usize,
        jobs: &[MmJob],
    ) -> ((Matrix<S>, Matrix<S>), u64) {
        // Dedup the rank's operand panels; footprints are recursion-aligned,
        // so equal-or-disjoint, and the word count is exact.
        let mut a_rects: BTreeSet<Region> = BTreeSet::new();
        let mut b_rects: BTreeSet<Region> = BTreeSet::new();
        for job in jobs {
            if let MmJob::Leaf { a, b, .. } = job {
                a_rects.insert(rect_region(*a));
                b_rects.insert(rect_region(*b));
            }
        }
        let mut local_a = Matrix::filled(self.a.rows(), self.a.cols(), S::zero());
        let mut local_b = Matrix::filled(self.b.rows(), self.b.cols(), S::zero());
        let mut words = 0u64;
        for (rects, src, dst) in [
            (&a_rects, &self.a, &mut local_a),
            (&b_rects, &self.b, &mut local_b),
        ] {
            for r in rects {
                words += r.area() as u64;
                for i in r.r0..r.r1 {
                    for j in r.c0..r.c1 {
                        dst.set(i, j, src.get(i, j));
                    }
                }
            }
        }
        ((local_a, local_b), words)
    }

    fn init_state(
        &self,
        _placement: &Placement,
        _rank: usize,
        input: (Matrix<S>, Matrix<S>),
    ) -> MmRun<S> {
        let (local_a, local_b) = input;
        MmRun::from_plan(
            local_a,
            local_b,
            Arc::clone(&self.compiled),
            self.cfg.clone(),
        )
    }

    fn run_step(&self, rank: usize, state: &mut MmRun<S>, job: &MmJob) {
        state.step(rank, job);
    }

    fn pack(&self, state: &MmRun<S>, buf: usize, region: Region, out: &mut Vec<S>) {
        for i in region.r0..region.r1 {
            for j in region.c0..region.c1 {
                out.push(state.buffer_get(buf, i, j));
            }
        }
    }

    fn unpack(&self, state: &mut MmRun<S>, buf: usize, region: Region, data: &[S]) {
        let mut data = data.iter();
        for i in region.r0..region.r1 {
            for j in region.c0..region.c1 {
                state.buffer_set(buf, i, j, *data.next().expect("part carries its region"));
            }
        }
    }

    fn gather(&self, placement: &Placement, rank: usize, state: MmRun<S>) -> (Vec<S>, u64) {
        let (n, m) = (self.a.rows(), self.b.cols());
        let cells: Vec<S> = owned_cells(placement, rank, n, m)
            .map(|(i, j)| state.buffer_get(0, i, j))
            .collect();
        let words = cells.len() as u64;
        (cells, words)
    }

    fn finish(&self, placement: &Placement, gathers: Vec<Vec<S>>) -> Matrix<S> {
        let (n, m) = (self.a.rows(), self.b.cols());
        let mut fragments: Vec<_> = gathers.into_iter().map(Vec::into_iter).collect();
        Matrix::from_fn(n, m, |i, j| {
            fragments[placement.owner(i, j)]
                .next()
                .expect("gather covers every owned cell")
        })
    }
}
