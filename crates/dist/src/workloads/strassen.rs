//! Strassen CONST-PIECES on the shared-nothing executor.
//!
//! The pruned-BFS tree expansion and the bottom-up combine are host-side
//! phases of [`StrassenRun`]; what the paper distributes is the leaf
//! multiplications.  The adapter scatters each leaf's `(Sᵣ, Tᵣ)` operand
//! pair (2·size² words) to its assigned rank, the rank multiplies with the
//! same sequential Strassen kernel the shared-memory executor uses, and the
//! host gathers the size²-word products back and combines — no buffer is
//! ever shared, and there is no exchange/writeback traffic because leaves
//! are independent (the plan is a single wave).

use crate::exec::DistWorkload;
use crate::Region;
use paco_core::machine::Placement;
use paco_core::matrix::Matrix;
use paco_core::semiring::Ring;
use paco_matmul::{strassen_sequential_with_cutoff, StrassenRun};
use parking_lot::Mutex;

/// The Strassen request bound for distributed execution, wrapping the
/// host-side [`StrassenRun`] whose expansion provides leaf operands and
/// whose combine consumes the gathered products.
pub struct StrassenDist<R: Ring> {
    run: Mutex<Option<StrassenRun<R>>>,
    cutoff: usize,
}

impl<R: Ring> StrassenDist<R> {
    /// Wrap an already-bound run (`StrassenRun::from_plan*`); `cutoff` must
    /// be the run's own base-case threshold so rank-side leaves are
    /// bit-identical to [`StrassenRun::step`].
    pub fn new(run: StrassenRun<R>, cutoff: usize) -> Self {
        Self {
            run: Mutex::new(Some(run)),
            cutoff,
        }
    }
}

impl<R: Ring> DistWorkload for StrassenDist<R> {
    type Job = usize;
    type Elem = R;
    type RankInput = Vec<(usize, Matrix<R>, Matrix<R>)>;
    type RankState = Vec<(usize, Matrix<R>)>;
    type Gather = Vec<(usize, Matrix<R>)>;
    type Output = Matrix<R>;

    fn reads(&self, _job: &usize) -> Vec<(usize, Region)> {
        // Leaves touch only their scattered private operands.
        Vec::new()
    }

    fn writes(&self, _job: &usize) -> Vec<(usize, Region)> {
        Vec::new()
    }

    fn scatter(
        &self,
        _placement: &Placement,
        _rank: usize,
        jobs: &[usize],
    ) -> (Vec<(usize, Matrix<R>, Matrix<R>)>, u64) {
        let run = self.run.lock();
        let run = run.as_ref().expect("scatter precedes finish");
        let mut words = 0u64;
        let operands = jobs
            .iter()
            .map(|&idx| {
                let (a, b) = run
                    .leaf_operands(idx)
                    .expect("assigned leaves keep their operands");
                words += (a.rows() * a.cols() + b.rows() * b.cols()) as u64;
                (idx, a.clone(), b.clone())
            })
            .collect();
        (operands, words)
    }

    fn init_state(
        &self,
        _placement: &Placement,
        _rank: usize,
        input: Vec<(usize, Matrix<R>, Matrix<R>)>,
    ) -> Vec<(usize, Matrix<R>)> {
        input
            .into_iter()
            .map(|(idx, a, b)| (idx, strassen_sequential_with_cutoff(&a, &b, self.cutoff)))
            .collect()
    }

    fn run_step(&self, _rank: usize, _state: &mut Vec<(usize, Matrix<R>)>, _job: &usize) {
        // Products are computed eagerly in `init_state` (the plan is a
        // single wave of independent leaves, so compute order within the
        // rank is immaterial); steps have nothing left to do.
    }

    fn pack(
        &self,
        _state: &Vec<(usize, Matrix<R>)>,
        _buf: usize,
        _region: Region,
        _out: &mut Vec<R>,
    ) {
        unreachable!("strassen leaves have no cross-rank footprints")
    }

    fn unpack(
        &self,
        _state: &mut Vec<(usize, Matrix<R>)>,
        _buf: usize,
        _region: Region,
        _data: &[R],
    ) {
        unreachable!("strassen leaves have no cross-rank footprints")
    }

    fn gather(
        &self,
        _placement: &Placement,
        _rank: usize,
        state: Vec<(usize, Matrix<R>)>,
    ) -> (Vec<(usize, Matrix<R>)>, u64) {
        let words = state
            .iter()
            .map(|(_, m)| (m.rows() * m.cols()) as u64)
            .sum();
        (state, words)
    }

    fn finish(&self, _placement: &Placement, gathers: Vec<Vec<(usize, Matrix<R>)>>) -> Matrix<R> {
        let run = self
            .run
            .lock()
            .take()
            .expect("finish consumes the host-side run exactly once");
        for (idx, product) in gathers.into_iter().flatten() {
            run.install_result(idx, product);
        }
        run.finish()
    }
}
