//! [`DistWorkload`](crate::DistWorkload) adapters over the existing
//! shared-memory run states.
//!
//! Each adapter answers four questions for the executor: what `(buffer,
//! region)` footprints a job touches (driving the lowering), how a rank's
//! initial operands are built (`scatter`/`init_state`), how ghost regions
//! move across ranks (`pack`/`unpack` against the rank's private tables),
//! and how the output is assembled (`gather`/`finish`).  Compute is always
//! the workload crate's own leaf kernel — bit-identical results come from
//! identical kernels over identical data in identical order, not from new
//! numerics.

mod fw;
mod lcs;
mod mm;
mod strassen;

pub use fw::FwDist;
pub use lcs::LcsDist;
pub use mm::MmDist;
pub use strassen::StrassenDist;

use paco_core::machine::Placement;

/// Row-major scan of the cells of an `rows × cols` buffer owned by `rank`,
/// the canonical order scatter/gather fragments are packed in.
pub(crate) fn owned_cells(
    placement: &Placement,
    rank: usize,
    rows: usize,
    cols: usize,
) -> impl Iterator<Item = (usize, usize)> + '_ {
    (0..rows)
        .flat_map(move |i| (0..cols).map(move |j| (i, j)))
        .filter(move |&(i, j)| placement.owner(i, j) == rank)
}
