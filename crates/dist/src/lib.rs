//! # paco-dist
//!
//! A shared-nothing **superstep emulation** of the PACO schedules
//! (Tang & Gao, SPAA 2020, Sect. III-E-1 and Sect. V): each of `p` ranks is
//! a thread owning *private* memory — no `SharedGrid` is ever aliased across
//! ranks — connected to its peers by typed channels.  The existing wave-
//! flattened [`Plan`](paco_runtime::schedule::Plan) IR is lowered, once per
//! skeleton, into a [`SuperstepPlan`]: per wave, (1) an **exchange** phase
//! ships exactly the block operands a rank's steps read but does not own
//! under a block-cyclic [`Placement`](paco_core::machine::Placement), (2) a
//! local **compute** phase replays the wave's steps through the workload's
//! existing monomorphized leaf kernels, (3) a **writeback** phase returns
//! words a rank wrote but does not own to their owner, and (4) a binary-tree
//! barrier closes the superstep.  The owner's copy is therefore
//! authoritative at every wave boundary, which is what makes distributed
//! runs bit-identical to the shared-memory executor: waves never overlap
//! cross-processor read/write footprints (the plan invariant the FW layering
//! test asserts), and within a rank the wave's steps run in the same FIFO
//! order the worker pool uses.
//!
//! Every send is metered.  The executor derives a run's exact word and
//! message traffic *deterministically from the lowered plan* — scatter,
//! exchange, writeback, gather, barrier and critical-path counts, per rank —
//! into a [`DistStats`], and mirrors it into the process-wide
//! [`paco_core::metrics::comm`] counters so benches can compare measured
//! traffic against the analytic bounds in `cache-sim::distributed`
//! (`paco_mm_distributed`, `paco_strassen_distributed`).
//!
//! The crate deliberately reuses the workload crates' run states as each
//! rank's private memory (`FwRun`, `MmRun`, `LcsRun`, `StrassenRun`):
//! correctness comes from the data each rank *sees*, not from new kernels.
//! A rank allocates full-shape local tables (O(n²) per rank rather than
//! O(n²/p)) — this is an emulation for exact accounting on one box, not a
//! memory-scaled MPI port, and the words shipped are what the paper bounds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exec;
pub mod lower;
pub mod workloads;

pub use exec::{ceil_log2, run_lowered, DistStats, DistWorkload};
pub use lower::{lower, LowerCache, LowerStats, SuperstepPlan, Transfer, WaveComm};
pub use workloads::{FwDist, LcsDist, MmDist, StrassenDist};

/// A half-open rectangle `[r0, r1) × [c0, c1)` of one logical buffer, the
/// unit of exchange/writeback traffic.
///
/// `Ord` (lexicographic) so transfer part lists can be deduplicated and
/// emitted in a deterministic order on both the sending and receiving side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Region {
    /// First row (inclusive).
    pub r0: usize,
    /// Past-the-end row.
    pub r1: usize,
    /// First column (inclusive).
    pub c0: usize,
    /// Past-the-end column.
    pub c1: usize,
}

impl Region {
    /// A region from row/column ranges.
    pub fn new(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> Self {
        Self {
            r0: rows.start,
            r1: rows.end,
            c0: cols.start,
            c1: cols.end,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.r1.saturating_sub(self.r0)
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.c1.saturating_sub(self.c0)
    }

    /// Number of elements (= words when shipped).
    pub fn area(&self) -> usize {
        self.rows() * self.cols()
    }

    /// True if the region contains no elements.
    pub fn is_empty(&self) -> bool {
        self.area() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_geometry() {
        let r = Region::new(2..5, 1..7);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.cols(), 6);
        assert_eq!(r.area(), 18);
        assert!(!r.is_empty());
        assert!(Region::new(3..3, 0..9).is_empty());
        // Ord is lexicographic, giving deterministic part ordering.
        assert!(Region::new(0..1, 0..1) < Region::new(0..1, 0..2));
    }
}
