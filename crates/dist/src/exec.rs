//! The shared-nothing superstep executor.
//!
//! [`run_lowered`] spawns one thread per rank.  Each rank owns *private*
//! state (a full workload run state — no `SharedGrid` is aliased across
//! ranks) and a single inbound channel; per wave it (1) packs and sends its
//! owned exchange transfers, (2) receives the exact number of inbound
//! exchanges the lowered schedule promises and unpacks them into its ghost
//! regions, (3) runs its steps of the wave in FIFO order through the
//! workload's leaf kernels, (4) sends/receives writebacks the same way, and
//! (5) joins a binary-tree barrier (`2(p−1)` messages, `2⌈log₂ p⌉` deep).
//! Messages from different peers interleave arbitrarily across phase
//! boundaries, so the mailbox stashes anything that is not the message the
//! protocol currently expects — counts are deterministic on both sides, so
//! no sentinel or flush message is ever needed.
//!
//! The host thread scatters rank inputs, gathers rank outputs, assembles
//! the run's [`DistStats`] *deterministically from the lowered schedule*
//! (no rank self-reporting) and mirrors them into
//! [`paco_core::metrics::comm`].

use crate::lower::SuperstepPlan;
use crate::Region;
use paco_core::machine::Placement;
use paco_core::metrics::comm::{self, RunComm};
use paco_runtime::schedule::Plan;
use std::sync::mpsc::{channel, Receiver, Sender};

/// A workload that can run on the shared-nothing executor.
///
/// The four implementations in [`crate::workloads`] adapt the existing
/// shared-memory run states (`FwRun`, `MmRun`, `LcsRun`, `StrassenRun`) —
/// each rank simply owns a private instance and the adapter tells the
/// executor which `(buffer, region)` footprints each job touches, how to
/// move initial operands in (`scatter`), ghost blocks across (`pack` /
/// `unpack`) and results out (`gather`).
pub trait DistWorkload: Sync {
    /// The plan's job type.
    type Job: Clone + Send + Sync;
    /// The element type carried by exchange/writeback messages.
    type Elem: Send;
    /// Per-rank initial operands, shipped host → rank before wave 0.
    type RankInput: Send;
    /// A rank's private run state (never crosses threads).
    type RankState;
    /// Per-rank result fragment, shipped rank → host after the last wave.
    type Gather: Send;
    /// The assembled output.
    type Output;

    /// The `(buffer, region)` footprints job `job` reads.
    fn reads(&self, job: &Self::Job) -> Vec<(usize, Region)>;
    /// The `(buffer, region)` footprints job `job` writes.
    fn writes(&self, job: &Self::Job) -> Vec<(usize, Region)>;
    /// Build rank `rank`'s initial operands given all jobs assigned to it,
    /// returning the input and the words it ships.
    fn scatter(
        &self,
        placement: &Placement,
        rank: usize,
        jobs: &[Self::Job],
    ) -> (Self::RankInput, u64);
    /// Materialise rank `rank`'s private state from its scattered input.
    fn init_state(
        &self,
        placement: &Placement,
        rank: usize,
        input: Self::RankInput,
    ) -> Self::RankState;
    /// Run one job against the rank's private state.
    fn run_step(&self, rank: usize, state: &mut Self::RankState, job: &Self::Job);
    /// Append `region` of buffer `buf` (row-major) to `out`.
    fn pack(&self, state: &Self::RankState, buf: usize, region: Region, out: &mut Vec<Self::Elem>);
    /// Install `data` (row-major, `region.area()` elements) into `region` of
    /// buffer `buf`.
    fn unpack(&self, state: &mut Self::RankState, buf: usize, region: Region, data: &[Self::Elem]);
    /// Extract rank `rank`'s result fragment, returning it and the words it
    /// ships back to the host.
    fn gather(
        &self,
        placement: &Placement,
        rank: usize,
        state: Self::RankState,
    ) -> (Self::Gather, u64);
    /// Assemble the output from every rank's fragment (index = rank).
    fn finish(&self, placement: &Placement, gathers: Vec<Self::Gather>) -> Self::Output;
}

/// Exact communication totals of one distributed run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Number of ranks the run used.
    pub ranks: usize,
    /// The run's word/message totals (also mirrored into
    /// [`paco_core::metrics::comm`]).
    pub comm: RunComm,
}

impl DistStats {
    /// Largest per-rank word total (the bandwidth critical path).
    pub fn max_rank_words(&self) -> u64 {
        self.comm.max_rank_words()
    }

    /// Mean per-rank word total.
    pub fn mean_rank_words(&self) -> f64 {
        self.comm.mean_rank_words()
    }
}

/// `⌈log₂ p⌉` (0 for `p <= 1`): the depth of the binary message tree, i.e.
/// the latency the paper charges per collective (Sect. III-E-1).
pub fn ceil_log2(p: usize) -> u64 {
    if p <= 1 {
        0
    } else {
        p.next_power_of_two().trailing_zeros() as u64
    }
}

enum RankMsg<E, I> {
    Input(I),
    Data {
        wave: u32,
        writeback: bool,
        parts: Vec<(usize, Region, Vec<E>)>,
    },
    BarrierUp {
        wave: u32,
    },
    BarrierDown {
        wave: u32,
    },
}

/// A rank's single inbound queue plus a stash for messages that arrive
/// ahead of the phase that consumes them (a fast peer's writeback can land
/// while this rank still awaits exchanges; a next-wave exchange can land
/// while it awaits this wave's barrier release).
struct Mailbox<E, I> {
    rx: Receiver<RankMsg<E, I>>,
    stash: Vec<RankMsg<E, I>>,
}

impl<E, I> Mailbox<E, I> {
    fn recv_match(&mut self, mut want: impl FnMut(&RankMsg<E, I>) -> bool) -> RankMsg<E, I> {
        if let Some(pos) = self.stash.iter().position(&mut want) {
            return self.stash.swap_remove(pos);
        }
        loop {
            let msg = self
                .rx
                .recv()
                .expect("a peer rank disconnected mid-superstep");
            if want(&msg) {
                return msg;
            }
            self.stash.push(msg);
        }
    }

    fn recv_input(&mut self) -> I {
        match self.recv_match(|m| matches!(m, RankMsg::Input(_))) {
            RankMsg::Input(input) => input,
            _ => unreachable!(),
        }
    }

    fn recv_data(&mut self, at: u32, wb: bool) -> Vec<(usize, Region, Vec<E>)> {
        match self.recv_match(
            |m| matches!(m, RankMsg::Data { wave, writeback, .. } if *wave == at && *writeback == wb),
        ) {
            RankMsg::Data { parts, .. } => parts,
            _ => unreachable!(),
        }
    }

    fn recv_barrier(&mut self, at: u32, up: bool) {
        self.recv_match(|m| match m {
            RankMsg::BarrierUp { wave } => up && *wave == at,
            RankMsg::BarrierDown { wave } => !up && *wave == at,
            _ => false,
        });
    }
}

/// Execute `plan` on `sp.ranks` message-passing rank threads and return the
/// assembled output plus the run's exact communication totals.
///
/// `sp` must be the lowering of exactly this `plan` under `placement`
/// ([`crate::lower::lower`] or a [`crate::LowerCache`] hit).
pub fn run_lowered<W: DistWorkload>(
    w: &W,
    plan: &Plan<W::Job>,
    placement: &Placement,
    sp: &SuperstepPlan,
) -> (W::Output, DistStats) {
    let p = placement.ranks();
    assert_eq!(sp.ranks, p, "schedule lowered for a different rank count");
    assert_eq!(sp.waves.len(), plan.waves().len(), "schedule/plan mismatch");

    // One inbound channel per rank; every rank (and the host, for scatter)
    // holds senders to all of them.
    let mut txs: Vec<Sender<RankMsg<W::Elem, W::RankInput>>> = Vec::with_capacity(p);
    let mut rxs: Vec<Mailbox<W::Elem, W::RankInput>> = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(Mailbox {
            rx,
            stash: Vec::new(),
        });
    }
    let (gather_tx, gather_rx) = channel::<(usize, W::Gather, u64)>();

    // Scatter inputs (and meter them) before the ranks start.
    let mut scatter_words = vec![0u64; p];
    let mut inputs = Vec::with_capacity(p);
    for (rank, slot) in scatter_words.iter_mut().enumerate() {
        let jobs: Vec<W::Job> = plan
            .waves()
            .iter()
            .flatten()
            .filter(|s| s.proc == rank)
            .map(|s| s.job.clone())
            .collect();
        let (input, words) = w.scatter(placement, rank, &jobs);
        *slot = words;
        inputs.push(input);
    }

    let mut gathers: Vec<Option<W::Gather>> = (0..p).map(|_| None).collect();
    let mut gather_words = vec![0u64; p];
    std::thread::scope(|scope| {
        for (rank, mut mailbox) in rxs.into_iter().enumerate() {
            let txs = txs.clone();
            let gather_tx = gather_tx.clone();
            scope.spawn(move || {
                let input = mailbox.recv_input();
                let mut state = w.init_state(placement, rank, input);
                for (wi, wave) in plan.waves().iter().enumerate() {
                    let wv = wi as u32;
                    for (wb, transfers) in [
                        (false, &sp.waves[wi].exchange),
                        (true, &sp.waves[wi].writeback),
                    ] {
                        if wb {
                            // Compute sits between the exchange and
                            // writeback rounds of the superstep.
                            for step in wave.iter().filter(|s| s.proc == rank) {
                                w.run_step(rank, &mut state, &step.job);
                            }
                        }
                        for t in transfers.iter().filter(|t| t.src == rank) {
                            let parts = t
                                .parts
                                .iter()
                                .map(|&(buf, region)| {
                                    let mut data = Vec::with_capacity(region.area());
                                    w.pack(&state, buf, region, &mut data);
                                    (buf, region, data)
                                })
                                .collect();
                            txs[t.dst]
                                .send(RankMsg::Data {
                                    wave: wv,
                                    writeback: wb,
                                    parts,
                                })
                                .expect("receiving rank hung up");
                        }
                        let expected = transfers.iter().filter(|t| t.dst == rank).count();
                        for _ in 0..expected {
                            for (buf, region, data) in mailbox.recv_data(wv, wb) {
                                w.unpack(&mut state, buf, region, &data);
                            }
                        }
                    }
                    // Binary-tree barrier: ups funnel to rank 0, downs fan
                    // back out; 2(p−1) messages, 2⌈log₂ p⌉ critical depth.
                    let children = [2 * rank + 1, 2 * rank + 2];
                    for _ in children.iter().filter(|&&c| c < p) {
                        mailbox.recv_barrier(wv, true);
                    }
                    if rank > 0 {
                        let parent = (rank - 1) / 2;
                        txs[parent]
                            .send(RankMsg::BarrierUp { wave: wv })
                            .expect("parent rank hung up");
                        mailbox.recv_barrier(wv, false);
                    }
                    for &c in children.iter().filter(|&&c| c < p) {
                        txs[c]
                            .send(RankMsg::BarrierDown { wave: wv })
                            .expect("child rank hung up");
                    }
                }
                let (g, words) = w.gather(placement, rank, state);
                gather_tx
                    .send((rank, g, words))
                    .expect("host hung up before gather");
            });
        }
        drop(gather_tx);
        for (rank, input) in inputs.into_iter().enumerate() {
            txs[rank]
                .send(RankMsg::Input(input))
                .expect("rank hung up before its input arrived");
        }
        for _ in 0..p {
            let (rank, g, words) = gather_rx.recv().expect("a rank died before gathering");
            gather_words[rank] = words;
            gathers[rank] = Some(g);
        }
    });

    let stats = assemble_stats(p, sp, &scatter_words, &gather_words);
    comm::record_run(&stats.comm);
    let output = w.finish(
        placement,
        gathers
            .into_iter()
            .map(|g| g.expect("every rank gathered"))
            .collect(),
    );
    (output, stats)
}

/// Derive the run's exact traffic totals from the lowered schedule and the
/// measured scatter/gather volumes — deterministic, no rank self-reporting.
fn assemble_stats(
    p: usize,
    sp: &SuperstepPlan,
    scatter_words: &[u64],
    gather_words: &[u64],
) -> DistStats {
    let mut comm = RunComm {
        supersteps: sp.waves.len() as u64,
        rank_words: vec![0; p],
        rank_messages: vec![0; p],
        ..RunComm::default()
    };
    for (rank, (&sw, &gw)) in scatter_words.iter().zip(gather_words).enumerate() {
        comm.scatter_words += sw;
        comm.gather_words += gw;
        comm.rank_words[rank] += sw + gw;
        // One scatter message in, one gather message out, per rank.
        comm.rank_messages[rank] += 2;
        comm.data_messages += 2;
    }
    let depth = ceil_log2(p);
    comm.critical_path_messages = 2 * depth; // scatter in, gather out
    for wave in &sp.waves {
        for (wb, transfers) in [(false, &wave.exchange), (true, &wave.writeback)] {
            for t in transfers.iter() {
                let words = t.words();
                if wb {
                    comm.writeback_words += words;
                } else {
                    comm.exchange_words += words;
                }
                comm.rank_words[t.src] += words;
                comm.rank_words[t.dst] += words;
                comm.rank_messages[t.src] += 1;
                comm.rank_messages[t.dst] += 1;
                comm.data_messages += 1;
            }
            if !transfers.is_empty() {
                // Transfers of one phase fly pairwise in parallel: one
                // message of latency on the critical path.
                comm.critical_path_messages += 1;
            }
        }
        comm.barrier_messages += 2 * (p as u64 - 1);
        comm.critical_path_messages += 2 * depth;
    }
    comm.data_words =
        comm.scatter_words + comm.exchange_words + comm.writeback_words + comm.gather_words;
    DistStats { ranks: p, comm }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_tree_depth() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(16), 4);
    }

    #[test]
    fn stats_meter_scatter_gather_and_barriers() {
        let sp = SuperstepPlan {
            ranks: 4,
            waves: vec![Default::default(), Default::default()],
        };
        let stats = assemble_stats(4, &sp, &[10, 0, 0, 0], &[1, 2, 3, 4]);
        assert_eq!(stats.comm.supersteps, 2);
        assert_eq!(stats.comm.scatter_words, 10);
        assert_eq!(stats.comm.gather_words, 10);
        assert_eq!(stats.comm.data_words, 20);
        assert_eq!(stats.comm.data_messages, 8);
        assert_eq!(stats.comm.barrier_messages, 2 * 2 * 3);
        // Empty waves still cost two tree traversals each, plus the
        // scatter/gather hops.
        assert_eq!(stats.comm.critical_path_messages, 2 * 2 + 2 * (2 * 2));
        assert_eq!(stats.comm.rank_words, vec![11, 2, 3, 4]);
        assert_eq!(stats.max_rank_words(), 11);
    }
}
