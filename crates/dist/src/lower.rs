//! Lowering a wave-flattened [`Plan`] into a deterministic communication
//! schedule.
//!
//! The schedule is derived once per (skeleton, placement) pair and shared by
//! every run: for each wave, every step's read footprint is sharded per
//! block-cyclic tile onto its owning rank, and each piece a step's rank does
//! not own becomes part of an **exchange** transfer from the owner; write
//! footprints symmetrically become **writeback** transfers to the owner.
//! Transfers are deduplicated (two steps of a rank reading the same tile
//! piece ship it once — footprints are recursion-aligned, so equal-or-
//! disjoint in practice) and emitted in sorted order, so sender and receiver
//! agree on exact message counts without any out-of-band negotiation.

use crate::exec::DistWorkload;
use crate::Region;
use paco_core::machine::Placement;
use paco_runtime::schedule::Plan;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One point-to-point message of a superstep: every part of `parts` is
/// packed (in order) into a single send from `src` to `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// The `(buffer, region)` pieces this message carries.
    pub parts: Vec<(usize, Region)>,
}

impl Transfer {
    /// Words this message carries (the sum of its parts' areas).
    pub fn words(&self) -> u64 {
        self.parts.iter().map(|(_, r)| r.area() as u64).sum()
    }
}

/// The communication schedule of one wave: exchanges before compute,
/// writebacks after.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaveComm {
    /// Owner → reader transfers delivering ghost operands for this wave.
    pub exchange: Vec<Transfer>,
    /// Writer → owner transfers returning non-owned results of this wave.
    pub writeback: Vec<Transfer>,
}

impl WaveComm {
    /// Words shipped by this wave's exchange phase.
    pub fn exchange_words(&self) -> u64 {
        self.exchange.iter().map(Transfer::words).sum()
    }

    /// Words shipped by this wave's writeback phase.
    pub fn writeback_words(&self) -> u64 {
        self.writeback.iter().map(Transfer::words).sum()
    }
}

/// The complete lowered communication schedule of a plan: one [`WaveComm`]
/// per wave, for a fixed rank count and placement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SuperstepPlan {
    /// Number of ranks the schedule was lowered for.
    pub ranks: usize,
    /// Per-wave transfers, aligned with the plan's waves.
    pub waves: Vec<WaveComm>,
}

impl SuperstepPlan {
    /// Messages rank `rank` must receive in wave `wave`'s exchange phase.
    pub fn incoming_exchange(&self, wave: usize, rank: usize) -> usize {
        self.waves[wave]
            .exchange
            .iter()
            .filter(|t| t.dst == rank)
            .count()
    }

    /// Messages rank `rank` must receive in wave `wave`'s writeback phase.
    pub fn incoming_writeback(&self, wave: usize, rank: usize) -> usize {
        self.waves[wave]
            .writeback
            .iter()
            .filter(|t| t.dst == rank)
            .count()
    }

    /// Total exchange words across all waves.
    pub fn exchange_words(&self) -> u64 {
        self.waves.iter().map(WaveComm::exchange_words).sum()
    }

    /// Total writeback words across all waves.
    pub fn writeback_words(&self) -> u64 {
        self.waves.iter().map(WaveComm::writeback_words).sum()
    }

    /// Total point-to-point transfers (exchange + writeback) across waves.
    pub fn transfers(&self) -> usize {
        self.waves
            .iter()
            .map(|w| w.exchange.len() + w.writeback.len())
            .sum()
    }
}

/// Split `region` into per-tile pieces labelled with their owning rank.
///
/// Pieces are intersections with the placement's `block × block` tiles, so
/// identical regions always shard into identical pieces — the canonical form
/// the transfer dedup relies on.
pub fn shards(placement: &Placement, region: Region) -> Vec<(usize, Region)> {
    if region.is_empty() {
        return Vec::new();
    }
    let b = placement.block();
    let mut out = Vec::new();
    let (tr0, tr1) = (region.r0 / b, (region.r1 - 1) / b);
    let (tc0, tc1) = (region.c0 / b, (region.c1 - 1) / b);
    for tr in tr0..=tr1 {
        for tc in tc0..=tc1 {
            let piece = Region {
                r0: region.r0.max(tr * b),
                r1: region.r1.min((tr + 1) * b),
                c0: region.c0.max(tc * b),
                c1: region.c1.min((tc + 1) * b),
            };
            out.push((placement.owner(tr * b, tc * b), piece));
        }
    }
    out
}

/// Lower a plan's waves into a [`SuperstepPlan`] under `placement`, using
/// the workload's per-job read/write footprints.
pub fn lower<W: DistWorkload + ?Sized>(
    w: &W,
    plan: &Plan<W::Job>,
    placement: &Placement,
) -> SuperstepPlan {
    let mut waves = Vec::with_capacity(plan.waves().len());
    for wave in plan.waves() {
        let mut exchange: BTreeMap<(usize, usize), BTreeSet<(usize, Region)>> = BTreeMap::new();
        let mut writeback: BTreeMap<(usize, usize), BTreeSet<(usize, Region)>> = BTreeMap::new();
        for step in wave {
            for (buf, region) in w.reads(&step.job) {
                for (owner, piece) in shards(placement, region) {
                    if owner != step.proc {
                        exchange
                            .entry((owner, step.proc))
                            .or_default()
                            .insert((buf, piece));
                    }
                }
            }
            for (buf, region) in w.writes(&step.job) {
                for (owner, piece) in shards(placement, region) {
                    if owner != step.proc {
                        writeback
                            .entry((step.proc, owner))
                            .or_default()
                            .insert((buf, piece));
                    }
                }
            }
        }
        let to_transfers = |map: BTreeMap<(usize, usize), BTreeSet<(usize, Region)>>| {
            map.into_iter()
                .map(|((src, dst), parts)| Transfer {
                    src,
                    dst,
                    parts: parts.into_iter().collect(),
                })
                .collect()
        };
        waves.push(WaveComm {
            exchange: to_transfers(exchange),
            writeback: to_transfers(writeback),
        });
    }
    SuperstepPlan {
        ranks: placement.ranks(),
        waves,
    }
}

/// A point-in-time copy of a [`LowerCache`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Lookups served from a cached lowered schedule.
    pub hits: u64,
    /// Lookups that lowered a fresh schedule and inserted it.
    pub misses: u64,
}

/// A cache of lowered [`SuperstepPlan`]s, keyed on the skeleton payload's
/// identity plus the placement — "skeleton lowering cached like any other
/// skeleton": the service lowers each (shape, ranks) pair once and every
/// later request reuses the schedule.
///
/// The key is the payload `Arc`'s pointer; the cache pins a clone of that
/// `Arc` in the entry so the pointer can never be recycled while the entry
/// lives (no ABA).
#[derive(Default)]
pub struct LowerCache {
    #[allow(clippy::type_complexity)]
    entries:
        Mutex<HashMap<(usize, usize, usize), (Arc<dyn Any + Send + Sync>, Arc<SuperstepPlan>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for LowerCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "LowerCache(hits={}, misses={})",
            stats.hits, stats.misses
        )
    }
}

impl LowerCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch the lowered schedule for (`payload`, `placement`), lowering and
    /// inserting it on first sight.  `payload` is the compiled skeleton the
    /// plan came from; it is pinned by the entry.
    pub fn get_or_lower<W: DistWorkload>(
        &self,
        payload: Arc<dyn Any + Send + Sync>,
        w: &W,
        plan: &Plan<W::Job>,
        placement: &Placement,
    ) -> Arc<SuperstepPlan> {
        let key = (
            Arc::as_ptr(&payload) as *const () as usize,
            placement.ranks(),
            placement.block(),
        );
        if let Some((_, sp)) = self.entries.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(sp);
        }
        // Lower outside the lock: lowering only reads the immutable plan, so
        // a racing duplicate insert is merely redundant work, never wrong.
        let sp = Arc::new(lower(w, plan, placement));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().insert(key, (payload, Arc::clone(&sp)));
        sp
    }

    /// The cache's hit/miss counters so far.
    pub fn stats(&self) -> LowerStats {
        LowerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_split_per_tile_and_cover_the_region() {
        let pl = Placement::new(4, 4);
        let region = Region::new(2..10, 3..5);
        let pieces = shards(&pl, region);
        // Rows 2..10 cross tiles [0,4) and [4,8) and [8,12); cols stay in
        // tile [0,4) and [4,8).
        let area: usize = pieces.iter().map(|(_, p)| p.area()).sum();
        assert_eq!(area, region.area());
        for (owner, p) in &pieces {
            assert!(*owner < 4);
            assert!(!p.is_empty());
            assert!(p.r0 >= region.r0 && p.r1 <= region.r1);
            // A piece never crosses a tile boundary.
            assert_eq!(p.r0 / 4, (p.r1 - 1) / 4);
            assert_eq!(p.c0 / 4, (p.c1 - 1) / 4);
        }
        assert!(shards(&pl, Region::new(5..5, 0..9)).is_empty());
    }
}
