//! Incremental re-closure over idempotent semirings.
//!
//! Everything below the service layer is one-shot: a `Closure` request closes
//! an adjacency matrix and forgets it.  The north-star workload (ROADMAP
//! item 5) re-solves *slightly changed* problems — the same road network with
//! one edge re-weighted, the same reachability graph with one link added —
//! and re-running the full `O(n³)` closure per edit wastes almost all of its
//! work.  The paper's semiring formulation is what makes the incremental
//! path crisp: over an idempotent semiring the closure is a join of path
//! weights, so an *improving* edge update can be folded in by re-propagating
//! only the entries it actually changes.
//!
//! [`ClosedState`] owns an adjacency matrix together with its closure and
//! serves [`EdgeUpdate`] batches:
//!
//! * **Incremental path** — for an eligible update (improving weight, cycle
//!   through the new edge absorbed by `1`), the closed-form single-edge
//!   update `D'ᵢⱼ = Dᵢⱼ ⊕ Lᵢ ⊗ Rⱼ` is applied to the *dirty rectangle*
//!   only: the rows whose distance-to-`v` changed × the columns whose
//!   distance-from-`u` changed (see `closed.rs` for the containment
//!   argument).  Work is accounted per [`Tuning::incr_block`]-sized block —
//!   the `incr/*` metrics counters — because exact counters, not timings,
//!   are the trustworthy signal on a 1-core container.
//! * **Full fallback** — a non-improving update (e.g. an edge deletion), an
//!   unsafe cycle, or a dirty frontier above
//!   [`Tuning::incr_fallback_percent`] of the block grid re-closes the
//!   adjacency from scratch.  Both paths produce bit-identical closures;
//!   the threshold only trades bookkeeping for bulk recompute.
//!
//! [`HandleRegistry`] stores `ClosedState`s type-erased behind small `Copy`
//! [`ClosedGraph`] handles so `paco_service` can route update requests to
//! the Engine shard owning the closed state (handle id → shard affinity)
//! while the state itself stays behind one mutex.
//!
//! [`Tuning::incr_block`]: paco_core::tuning::Tuning::incr_block
//! [`Tuning::incr_fallback_percent`]: paco_core::tuning::Tuning::incr_fallback_percent

pub mod closed;
pub mod registry;

pub use closed::{ClosedState, EdgeUpdate, UpdateStats};
pub use registry::{ClosedGraph, HandleRegistry};
