//! The incremental closure state and its edge-update algebra.
//!
//! # The single-edge update formula
//!
//! Let `D = A*` be the closure of the adjacency `A` over an idempotent
//! semiring, and let the update assign weight `w` to edge `(u, v)`.  Define
//!
//! ```text
//! L[i] = (δᵢᵤ·1 ⊕ D[i][u]) ⊗ w        (best way to reach the new edge's head)
//! R[j] =  δⱼᵥ·1 ⊕ D[v][j]             (best way to leave its tail)
//! ```
//!
//! Every walk in the updated graph either avoids the new edge (weight already
//! in `D`) or decomposes around its uses.  Walks using it once contribute
//! `L[i] ⊗ R[j]`; walks using it `k ≥ 2` times contribute
//! `L[i] ⊗ cᵏ⁻¹ ⊗ R[j]` where `c = w ⊗ (δᵥᵤ·1 ⊕ D[v][u])` is the best cycle
//! through the new edge.  Under the two *eligibility conditions*
//!
//! 1. **improving**: `w ⊕ A[u][v] = w` (assignment coincides with a join), and
//! 2. **safe cycle**: `1 ⊕ c = 1` (the cycle cannot beat staying put, so
//!    `c* = 1` and multi-use walks are absorbed: `L ⊗ c ⊗ R ⊕ L ⊗ R = L ⊗ R`),
//!
//! the exact new closure is `D'[i][j] = D[i][j] ⊕ L[i] ⊗ R[j]`.
//!
//! # The dirty rectangle
//!
//! Sweeping that formula over all `n²` cells would touch as many entries as
//! a full re-closure rewrites.  Define the *dirty frontier*
//!
//! ```text
//! dirty_rows = { i : D[i][v] ⊕ L[i] ⊗ R[v] ≠ D[i][v] }
//! dirty_cols = { j : D[u][j] ⊕ L[u] ⊗ R[j] ≠ D[u][j] }
//! ```
//!
//! **Every changed cell lies in `dirty_rows × dirty_cols`.**  Proof sketch:
//! `R[j] = R[v] ⊗ R[j]` (a walk leaving `v` passes through `v`, and the join
//! over such factorizations is absorbed by idempotence), so if row `i` is
//! clean — `L[i] ⊗ R[v]` absorbed by `D[i][v]` — then for every `j`:
//! `L[i] ⊗ R[j] = L[i] ⊗ R[v] ⊗ R[j]` is absorbed by `D[i][v] ⊗ R[j]`, a
//! walk weight already joined into `D[i][j]`.  Symmetrically for clean
//! columns via `L[i] = L[i] ⊗ (δᵤᵤ·1 ⊕ ...)`-style factoring through `u`.
//! The sweep therefore touches only the rectangle, which for a single-edge
//! update on a warm closure is a thin cross-shaped frontier, not the whole
//! matrix — that is what the `incr/blocks-repropagated-ratio` gauge
//! measures.

use paco_core::matrix::Matrix;
use paco_core::metrics;
use paco_core::semiring::IdempotentSemiring;
use paco_graph::seq::fw_seq;

/// One edge assignment: set the adjacency weight of `(from, to)` to `weight`.
///
/// Assignment — not join — so updates can also *worsen* an edge (raise a
/// min-plus distance, delete a boolean link by assigning `false`); worsening
/// updates are served by the full re-closure fallback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeUpdate<S> {
    /// Tail vertex (row index).
    pub from: usize,
    /// Head vertex (column index).
    pub to: usize,
    /// New adjacency weight.
    pub weight: S,
}

impl<S> EdgeUpdate<S> {
    /// Convenience constructor.
    pub fn new(from: usize, to: usize, weight: S) -> Self {
        Self { from, to, weight }
    }
}

/// Exact per-batch work accounting, mirrored into the process-wide
/// [`metrics::incr`] counters by [`ClosedState::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Updates in the batch.
    pub updates: u64,
    /// Updates served by dirty-rectangle re-propagation.
    pub incremental: u64,
    /// Updates absorbed by a full re-closure fallback.
    pub full: u64,
    /// Full re-closures triggered (0 or 1 per batch: the fallback absorbs
    /// every remaining update of the batch into one re-closure).
    pub full_fallbacks: u64,
    /// Dirty frontier rows summed over the incremental updates.
    pub frontier_rows: u64,
    /// Dirty frontier columns summed over the incremental updates.
    pub frontier_cols: u64,
    /// Blocks of the dirty rectangle examined.
    pub blocks_probed: u64,
    /// Probed blocks in which at least one closure entry changed.
    pub blocks_repropagated: u64,
    /// Blocks a full re-closure would have rewritten for the same updates
    /// (`⌈n/block⌉²` per incremental update) — the ratio denominator.
    pub blocks_total: u64,
}

impl UpdateStats {
    /// Blocks actually rewritten as a fraction of what full re-closure would
    /// have rewritten; 0 when nothing ran incrementally.
    pub fn repropagated_ratio(&self) -> f64 {
        if self.blocks_total == 0 {
            0.0
        } else {
            self.blocks_repropagated as f64 / self.blocks_total as f64
        }
    }
}

/// The dirty frontier of one eligible update, grouped by accounting block.
struct Frontier<S> {
    l: Vec<S>,
    r: Vec<S>,
    rows_by_block: Vec<Vec<usize>>,
    cols_by_block: Vec<Vec<usize>>,
    frontier_rows: u64,
    frontier_cols: u64,
    blocks_probed: u64,
}

/// An adjacency matrix kept together with its closure, able to fold in
/// [`EdgeUpdate`] batches without re-closing from scratch.
///
/// Invariant (checked bit-for-bit by the `tests/incr.rs` proptests):
/// `closed == fw_seq(&adj)` after every construction and every batch.
#[derive(Debug, Clone)]
pub struct ClosedState<S: IdempotentSemiring> {
    adj: Matrix<S>,
    closed: Matrix<S>,
}

impl<S: IdempotentSemiring> ClosedState<S> {
    /// Close `adj` from scratch (the handle-materialization path).
    pub fn close(adj: Matrix<S>, fw_base: usize) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "closure needs a square adjacency");
        let closed = fw_seq(&adj, fw_base);
        metrics::incr::record_close();
        Self { adj, closed }
    }

    /// Adopt an already-computed closure (e.g. one produced by the parallel
    /// PACO plan); the caller asserts `closed` really is the closure of `adj`.
    pub fn from_parts(adj: Matrix<S>, closed: Matrix<S>) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "closure needs a square adjacency");
        assert_eq!(adj.rows(), closed.rows(), "adjacency/closure side mismatch");
        assert_eq!(closed.rows(), closed.cols(), "closure must be square");
        Self { adj, closed }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.adj.rows()
    }

    /// The current adjacency (reflects every applied update).
    pub fn adjacency(&self) -> &Matrix<S> {
        &self.adj
    }

    /// The current closure of [`Self::adjacency`].
    pub fn closed(&self) -> &Matrix<S> {
        &self.closed
    }

    /// Apply a batch of edge assignments in order, keeping the closure exact.
    ///
    /// Each update is served incrementally when eligible and its dirty
    /// rectangle probes at most `fallback_percent` percent of the
    /// `⌈n/block⌉ × ⌈n/block⌉` accounting grid; an ineligible update or a
    /// too-dense frontier writes the remaining tail of the batch into the
    /// adjacency and absorbs it with a single full re-closure.  Either way
    /// `closed()` ends bit-identical to a from-scratch closure of the final
    /// adjacency.
    pub fn apply_batch(
        &mut self,
        updates: &[EdgeUpdate<S>],
        block: usize,
        fallback_percent: usize,
        fw_base: usize,
    ) -> UpdateStats {
        let n = self.n();
        let block = block.max(1);
        let nb = n.div_ceil(block);
        let grid = (nb * nb) as u64;
        let mut stats = UpdateStats {
            updates: updates.len() as u64,
            ..UpdateStats::default()
        };

        for (idx, up) in updates.iter().enumerate() {
            let (u, v, w) = (up.from, up.to, up.weight);
            assert!(u < n && v < n, "edge ({u}, {v}) out of bounds for n = {n}");

            if w == self.adj[(u, v)] {
                // Assigning the weight already there: closure unchanged.
                stats.incremental += 1;
                stats.blocks_total += grid;
                continue;
            }

            // Eligibility: improving assignment ≡ join, and the best cycle
            // through the new edge must be absorbed by 1 (see module docs).
            let improving = w.add(self.adj[(u, v)]) == w;
            let d_vu = if v == u {
                S::one().add(self.closed[(v, u)])
            } else {
                self.closed[(v, u)]
            };
            let cycle_safe = S::one().add(w.mul(d_vu)) == S::one();
            if !(improving && cycle_safe) {
                // Worsening assignment or unsafe cycle: no incremental form.
                self.full_fallback(&updates[idx..], fw_base, &mut stats);
                break;
            }

            let frontier = self.frontier(u, v, w, block, nb);
            if frontier.blocks_probed * 100 > fallback_percent as u64 * grid {
                // Frontier denser than the threshold: probing work is
                // discarded and the rest of the batch re-closes in bulk.
                self.full_fallback(&updates[idx..], fw_base, &mut stats);
                break;
            }

            self.adj[(u, v)] = w;
            let repropagated = self.sweep(&frontier);
            stats.incremental += 1;
            stats.blocks_total += grid;
            stats.frontier_rows += frontier.frontier_rows;
            stats.frontier_cols += frontier.frontier_cols;
            stats.blocks_probed += frontier.blocks_probed;
            stats.blocks_repropagated += repropagated;
        }

        metrics::incr::record_batch(
            stats.incremental,
            stats.full,
            stats.full_fallbacks,
            stats.blocks_probed,
            stats.blocks_repropagated,
            stats.blocks_total,
            stats.frontier_rows,
            stats.frontier_cols,
        );
        stats
    }

    /// Write `rest` into the adjacency and re-close from scratch once.
    fn full_fallback(&mut self, rest: &[EdgeUpdate<S>], fw_base: usize, stats: &mut UpdateStats) {
        let n = self.n();
        for up in rest {
            let (u, v) = (up.from, up.to);
            assert!(u < n && v < n, "edge ({u}, {v}) out of bounds for n = {n}");
            self.adj[(u, v)] = up.weight;
        }
        self.closed = fw_seq(&self.adj, fw_base);
        stats.full += rest.len() as u64;
        stats.full_fallbacks += 1;
    }

    /// Compute the dirty frontier of the eligible assignment `(u, v) ← w`
    /// against the current closure, without mutating anything.
    fn frontier(&self, u: usize, v: usize, w: S, block: usize, nb: usize) -> Frontier<S> {
        let n = self.n();
        let d = &self.closed;

        // L[i] = (δᵢᵤ·1 ⊕ D[i][u]) ⊗ w,  R[j] = δⱼᵥ·1 ⊕ D[v][j].
        let l: Vec<S> = (0..n)
            .map(|i| {
                let reach = if i == u {
                    S::one().add(d[(i, u)])
                } else {
                    d[(i, u)]
                };
                reach.mul(w)
            })
            .collect();
        let r: Vec<S> = (0..n)
            .map(|j| {
                if j == v {
                    S::one().add(d[(v, j)])
                } else {
                    d[(v, j)]
                }
            })
            .collect();

        let mut rows_by_block: Vec<Vec<usize>> = vec![Vec::new(); nb];
        let mut cols_by_block: Vec<Vec<usize>> = vec![Vec::new(); nb];
        let mut frontier_rows = 0u64;
        let mut frontier_cols = 0u64;
        for i in 0..n {
            if d[(i, v)].add(l[i].mul(r[v])) != d[(i, v)] {
                rows_by_block[i / block].push(i);
                frontier_rows += 1;
            }
        }
        for j in 0..n {
            if d[(u, j)].add(l[u].mul(r[j])) != d[(u, j)] {
                cols_by_block[j / block].push(j);
                frontier_cols += 1;
            }
        }
        let row_blocks = rows_by_block.iter().filter(|b| !b.is_empty()).count() as u64;
        let col_blocks = cols_by_block.iter().filter(|b| !b.is_empty()).count() as u64;

        Frontier {
            l,
            r,
            rows_by_block,
            cols_by_block,
            frontier_rows,
            frontier_cols,
            blocks_probed: row_blocks * col_blocks,
        }
    }

    /// Join `L ⊗ R` into the closure over the dirty rectangle; returns the
    /// number of probed blocks in which at least one entry changed.
    fn sweep(&mut self, f: &Frontier<S>) -> u64 {
        let d = &mut self.closed;
        let mut repropagated = 0u64;
        for rows in f.rows_by_block.iter().filter(|b| !b.is_empty()) {
            for cols in f.cols_by_block.iter().filter(|b| !b.is_empty()) {
                let mut changed = false;
                for &i in rows {
                    for &j in cols {
                        let joined = d[(i, j)].add(f.l[i].mul(f.r[j]));
                        if joined != d[(i, j)] {
                            d[(i, j)] = joined;
                            changed = true;
                        }
                    }
                }
                if changed {
                    repropagated += 1;
                }
            }
        }
        repropagated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::semiring::{BoolSemiring, Bottleneck, MinPlus, Semiring};
    use paco_core::workload::{random_adjacency, random_digraph};
    use paco_graph::kernel::fw_reference;

    fn assert_in_sync<S: IdempotentSemiring>(state: &ClosedState<S>) {
        assert_eq!(state.closed(), &fw_reference(state.adjacency()));
    }

    #[test]
    fn improving_single_edge_is_incremental_and_exact() {
        let adj = random_digraph(37, 0.15, 60, 7); // non-power-of-two side
        let mut state = ClosedState::close(adj, 8);
        let stats = state.apply_batch(&[EdgeUpdate::new(3, 30, MinPlus(1.0))], 8, 100, 8);
        assert_in_sync(&state);
        assert_eq!(
            (stats.incremental, stats.full, stats.full_fallbacks),
            (1, 0, 0)
        );
        assert!(stats.blocks_probed <= stats.blocks_total);
        assert!(stats.blocks_repropagated <= stats.blocks_probed);
        // Weight-1 edge into a digraph with weights in 1..=60 must shorten
        // something, so the sweep did real work.
        assert!(stats.blocks_repropagated >= 1);
    }

    #[test]
    fn worsening_update_takes_the_full_fallback() {
        let adj = random_digraph(24, 0.3, 20, 9);
        let mut state = ClosedState::close(adj, 8);
        // Make (0, 1) excellent, then retract it: the retraction cannot be
        // expressed as a join and must re-close.
        state.apply_batch(&[EdgeUpdate::new(0, 1, MinPlus(1.0))], 8, 100, 8);
        let stats = state.apply_batch(&[EdgeUpdate::new(0, 1, MinPlus(500.0))], 8, 100, 8);
        assert_in_sync(&state);
        assert_eq!(
            (stats.incremental, stats.full, stats.full_fallbacks),
            (0, 1, 1)
        );
    }

    #[test]
    fn fallback_percent_zero_always_recloses_and_stays_exact() {
        let adj = random_adjacency(19, 0.1, 3);
        let mut state = ClosedState::close(adj, 4);
        let batch = [
            EdgeUpdate::new(2, 17, BoolSemiring(true)),
            EdgeUpdate::new(17, 5, BoolSemiring(true)),
        ];
        let stats = state.apply_batch(&batch, 4, 0, 4);
        assert_in_sync(&state);
        // At 0% any update with a non-empty frontier re-closes in bulk;
        // updates whose frontier turns out empty still count as incremental.
        assert!(stats.full_fallbacks <= 1);
        assert_eq!(stats.incremental + stats.full, 2);
        assert_eq!(stats.blocks_repropagated, 0);
    }

    #[test]
    fn mixed_batch_with_retraction_matches_scratch_closure() {
        let adj = random_digraph(33, 0.2, 40, 11);
        let mut state = ClosedState::close(adj.clone(), 8);
        let batch = [
            EdgeUpdate::new(1, 20, MinPlus(2.0)),
            EdgeUpdate::new(20, 32, MinPlus(1.0)),
            EdgeUpdate::new(1, 20, MinPlus::zero()), // delete it again
            EdgeUpdate::new(5, 6, MinPlus(3.0)),
        ];
        let stats = state.apply_batch(&batch, 8, 100, 8);
        assert_in_sync(&state);
        assert_eq!(stats.updates, 4);
        assert_eq!(stats.incremental + stats.full, 4);
        assert_eq!(stats.full_fallbacks, 1); // the deletion forces one re-closure
    }

    #[test]
    fn bottleneck_updates_stay_exact() {
        let n = 21;
        let adj: Matrix<Bottleneck> = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                Bottleneck::one()
            } else if (i * 7 + j * 3) % 5 == 0 {
                Bottleneck(((i + 2 * j) % 9) as f64)
            } else {
                Bottleneck::zero()
            }
        });
        let mut state = ClosedState::close(adj, 4);
        let stats = state.apply_batch(&[EdgeUpdate::new(0, 13, Bottleneck(100.0))], 4, 100, 4);
        assert_in_sync(&state);
        assert_eq!(stats.incremental, 1);
    }

    #[test]
    fn noop_and_empty_batches_cost_nothing() {
        let adj = random_digraph(16, 0.2, 10, 13);
        let mut state = ClosedState::close(adj, 8);
        let before = state.closed().clone();
        let weight = state.adjacency()[(4, 9)];
        let stats = state.apply_batch(&[EdgeUpdate::new(4, 9, weight)], 8, 100, 8);
        assert_eq!(state.closed(), &before);
        assert_eq!((stats.incremental, stats.blocks_probed), (1, 0));
        let empty = state.apply_batch(&[], 8, 100, 8);
        assert_eq!(empty, UpdateStats::default());
    }
}
