//! Type-erased storage of closed-graph state behind small `Copy` handles.
//!
//! A [`ClosedState`] can be megabytes of matrix; requests flowing through
//! `paco_service` must stay cheap to clone and `Send`.  The registry keeps
//! each state behind an `Arc<Mutex<...>>`, hands out a [`ClosedGraph`]
//! handle (an id plus a phantom semiring type), and recovers the concrete
//! state by downcasting — so one registry serves every semiring
//! instantiation at once.  The handle id doubles as the Engine's routing
//! affinity (`id % shards`): updates for one graph land on one shard, but
//! correctness never depends on routing — the mutex serializes access
//! wherever the request runs.

use crate::closed::ClosedState;
use paco_core::semiring::IdempotentSemiring;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cheap, copyable reference to a [`ClosedState`] living in a
/// [`HandleRegistry`].  The phantom parameter pins the semiring at the type
/// level so a `ClosedGraph<MinPlus>` cannot be used to fetch a boolean
/// closure.
pub struct ClosedGraph<S> {
    id: u64,
    _semiring: PhantomData<fn() -> S>,
}

// Manual impls: `derive` would wrongly bound `S: Clone`/`S: Copy` even
// though only the phantom mentions it.
impl<S> Clone for ClosedGraph<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S> Copy for ClosedGraph<S> {}
impl<S> PartialEq for ClosedGraph<S> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl<S> Eq for ClosedGraph<S> {}
impl<S> fmt::Debug for ClosedGraph<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClosedGraph").field("id", &self.id).finish()
    }
}

impl<S> ClosedGraph<S> {
    /// The registry id; also the Engine routing affinity of this graph.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// A concurrent id → closed-state map shared by every shard of an Engine
/// (or by every clone of a `Session`).
#[derive(Default)]
pub struct HandleRegistry {
    next_id: AtomicU64,
    entries: Mutex<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
}

impl HandleRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a closed state, returning its handle.  Ids start at 1 and are
    /// never reused within a registry.
    pub fn insert<S: IdempotentSemiring>(&self, state: ClosedState<S>) -> ClosedGraph<S> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let entry: Arc<dyn Any + Send + Sync> = Arc::new(Mutex::new(state));
        self.entries.lock().insert(id, entry);
        ClosedGraph {
            id,
            _semiring: PhantomData,
        }
    }

    /// Fetch the state behind `handle`.  `None` if the handle was dropped
    /// (or never belonged to this registry); the semiring is guaranteed to
    /// match by the handle's type, but a forged id pointing at a different
    /// instantiation also comes back `None` rather than panicking.
    pub fn get<S: IdempotentSemiring>(
        &self,
        handle: ClosedGraph<S>,
    ) -> Option<Arc<Mutex<ClosedState<S>>>> {
        let entry = self.entries.lock().get(&handle.id)?.clone();
        entry.downcast::<Mutex<ClosedState<S>>>().ok()
    }

    /// Drop the state with the given id; `true` if something was removed.
    /// In-flight [`Self::get`] holders keep their `Arc` alive until they
    /// finish.
    pub fn remove(&self, id: u64) -> bool {
        self.entries.lock().remove(&id).is_some()
    }

    /// Number of live handles.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether no handles are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for HandleRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandleRegistry")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed::EdgeUpdate;
    use paco_core::semiring::{BoolSemiring, MinPlus};
    use paco_core::workload::{random_adjacency, random_digraph};

    #[test]
    fn insert_get_update_remove_roundtrip() {
        let reg = HandleRegistry::new();
        let h = reg.insert(ClosedState::close(random_digraph(12, 0.2, 9, 1), 4));
        assert_eq!(h.id(), 1);
        assert_eq!(reg.len(), 1);

        let state = reg.get(h).expect("live handle");
        let stats = state
            .lock()
            .apply_batch(&[EdgeUpdate::new(0, 7, MinPlus(1.0))], 4, 100, 4);
        assert_eq!(stats.updates, 1);

        assert!(reg.remove(h.id()));
        assert!(!reg.remove(h.id()));
        assert!(reg.get(h).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn one_registry_serves_mixed_semirings() {
        let reg = HandleRegistry::new();
        let hm = reg.insert(ClosedState::close(random_digraph(8, 0.3, 5, 2), 4));
        let hb = reg.insert(ClosedState::close(random_adjacency(9, 0.2, 3), 4));
        assert_ne!(hm.id(), hb.id());
        assert!(reg.get(hm).is_some());
        assert!(reg.get(hb).is_some());
        // A forged handle of the wrong semiring type fails safely.
        let forged = ClosedGraph::<BoolSemiring> {
            id: hm.id(),
            _semiring: PhantomData,
        };
        assert!(reg.get(forged).is_none());
    }

    #[test]
    fn handles_are_copy_and_comparable() {
        let reg = HandleRegistry::new();
        let h = reg.insert(ClosedState::close(random_digraph(4, 0.5, 3, 4), 2));
        let h2 = h; // Copy
        assert_eq!(h, h2);
        assert_eq!(format!("{h:?}"), "ClosedGraph { id: 1 }");
    }
}
