//! # paco-sort
//!
//! Comparison-based sorting from the PACO paper (Sect. III-G).
//!
//! * [`seq::seq_sample_sort`] — the sequential sample sort the paper's
//!   Lemma 15 refers to: recursive `√n`-way bucketing with an
//!   `O(n log n)`-work, `O((n/L)(1 + log_Z n))`-miss structure.
//! * [`po::po_sample_sort`] — a PBBS-style *low-depth* processor-oblivious
//!   sample sort: `√n`-ish buckets, block-local counting, scatter, parallel
//!   bucket sorts, all scheduled by rayon with no processor knowledge.  This is
//!   the competitor of Fig. 12b.
//! * [`paco::SortRun`] — the PACO SORT algorithm (Theorem 16): `p − 1` pivots
//!   chosen by oversampling with ratio `k = Θ(ln n)`, per-processor
//!   partitioning of an `n/p` chunk, a `p × p` count matrix with column prefix
//!   sums, an all-to-all redistribution, and a final *sequential* sample sort
//!   per processor — executed on the processor-aware worker pool.  Run it
//!   through `paco_service::Session` with the `Sort` request.
//!
//! All variants are generic over `Copy + Send + Sync` keys with a total order
//! given by `PartialOrd` (ties allowed, NaNs rejected by debug assertions).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod paco;
pub mod po;
pub mod seq;

pub use paco::{plan_sort, SortJob, SortRun};
pub use po::po_sample_sort;
pub use seq::seq_sample_sort;

/// The key bound shared by every sorting routine in this crate.  (`'static`
/// lets runs pool their scratch buffers in a type-erased
/// [`paco_core::arena::ScratchArena`].)
pub trait SortKey: Copy + Send + Sync + PartialOrd + 'static {}
impl<T: Copy + Send + Sync + PartialOrd + 'static> SortKey for T {}

/// Compare two keys, treating incomparable pairs (NaN) as equal after a debug
/// assertion; sorting is only meaningful on totally ordered inputs.
#[inline]
pub(crate) fn cmp_keys<T: PartialOrd>(a: &T, b: &T) -> std::cmp::Ordering {
    debug_assert!(
        a.partial_cmp(b).is_some(),
        "sorting keys must be totally ordered (no NaN)"
    );
    a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::workload::random_keys;
    use paco_runtime::WorkerPool;

    #[test]
    fn all_variants_agree_with_std_sort() {
        let input = random_keys(10_000, 42);
        let mut expect = input.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let mut a = input.clone();
        seq_sample_sort(&mut a);
        assert_eq!(a, expect);

        let mut b = input.clone();
        po_sample_sort(&mut b);
        assert_eq!(b, expect);

        let pool = WorkerPool::new(4);
        let run = SortRun::prepare(input, pool.p(), 16);
        run.plan().execute(&pool, |proc, job| run.step(proc, job));
        assert_eq!(run.finish(), expect);
    }
}
