//! Sequential sample sort (the paper's `SEQ-SAMPLE-SORT`, Lemma 15).
//!
//! Recursive `√n`-way sample sort: pick `√n` pivots from a sorted random
//! sample, bucket the keys by binary search over the pivots, recurse into the
//! buckets.  Each level streams the data a constant number of times, so the
//! cache complexity is `O((n/L)·(1 + log_Z n))` without knowing `Z` or `L`.
//! Small inputs fall back to an in-place insertion/quick hybrid.

use crate::cmp_keys;
use crate::SortKey;
use rand::Rng;

/// Inputs of at most this length are sorted directly.
const SMALL_SORT: usize = 2048;

/// Sort `data` in place with the sequential sample sort.
pub fn seq_sample_sort<T: SortKey>(data: &mut [T]) {
    let mut rng = paco_core::workload::rng(0x5eed_5eed);
    seq_sample_sort_rec(data, &mut rng, 0);
}

fn seq_sample_sort_rec<T: SortKey>(data: &mut [T], rng: &mut impl Rng, depth: usize) {
    let n = data.len();
    if n <= SMALL_SORT || depth > 32 {
        small_sort(data);
        return;
    }

    // ---- Pivot selection: oversample, sort the sample, take evenly spaced pivots.
    let bucket_count = (n as f64).sqrt() as usize;
    let bucket_count = bucket_count.clamp(2, 1024);
    let oversample = 8;
    let sample_size = (bucket_count * oversample).min(n);
    let mut sample: Vec<T> = (0..sample_size)
        .map(|_| data[rng.gen_range(0..n)])
        .collect();
    small_sort(&mut sample);
    let pivots: Vec<T> = (1..bucket_count)
        .map(|i| sample[i * sample_size / bucket_count])
        .collect();

    // ---- Count bucket sizes, then scatter into a scratch buffer.
    let mut counts = vec![0usize; bucket_count];
    let bucket_of = |x: &T, pivots: &[T]| -> usize {
        // Binary search for the first pivot greater than x.
        let mut lo = 0usize;
        let mut hi = pivots.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cmp_keys(&pivots[mid], x) == std::cmp::Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    };
    for x in data.iter() {
        counts[bucket_of(x, &pivots)] += 1;
    }
    let mut offsets = vec![0usize; bucket_count + 1];
    for b in 0..bucket_count {
        offsets[b + 1] = offsets[b] + counts[b];
    }
    let mut scratch: Vec<T> = Vec::with_capacity(n);
    // SAFETY-free approach: fill with copies then overwrite positionally.
    scratch.extend_from_slice(data);
    let mut cursor = offsets.clone();
    for x in data.iter() {
        let b = bucket_of(x, &pivots);
        scratch[cursor[b]] = *x;
        cursor[b] += 1;
    }
    data.copy_from_slice(&scratch);

    // ---- Recurse into each bucket.
    for b in 0..bucket_count {
        let lo = offsets[b];
        let hi = offsets[b + 1];
        seq_sample_sort_rec(&mut data[lo..hi], rng, depth + 1);
    }
}

/// In-place small sort: insertion sort below 32 elements, median-of-three
/// quicksort above.
pub(crate) fn small_sort<T: SortKey>(data: &mut [T]) {
    if data.len() <= 32 {
        insertion_sort(data);
        return;
    }
    quicksort(data, 0);
}

fn insertion_sort<T: SortKey>(data: &mut [T]) {
    for i in 1..data.len() {
        let key = data[i];
        let mut j = i;
        while j > 0 && cmp_keys(&data[j - 1], &key) == std::cmp::Ordering::Greater {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = key;
    }
}

fn quicksort<T: SortKey>(data: &mut [T], depth: usize) {
    let n = data.len();
    if n <= 32 {
        insertion_sort(data);
        return;
    }
    if depth > 64 {
        // Pathological pivot choices: fall back to heap-ish safety via insertion
        // (depth 64 on shrinking slices implies tiny slices in practice).
        insertion_sort(data);
        return;
    }
    // Median of three pivot.
    let mid = n / 2;
    let last = n - 1;
    let (a, b, c) = (data[0], data[mid], data[last]);
    let pivot = median3(a, b, c);
    // Hoare partition.
    let mut i = 0usize;
    let mut j = n - 1;
    loop {
        while cmp_keys(&data[i], &pivot) == std::cmp::Ordering::Less {
            i += 1;
        }
        while cmp_keys(&data[j], &pivot) == std::cmp::Ordering::Greater {
            if j == 0 {
                break;
            }
            j -= 1;
        }
        if i >= j {
            break;
        }
        data.swap(i, j);
        i += 1;
        if j == 0 {
            break;
        }
        j -= 1;
    }
    let split = j + 1;
    let (left, right) = data.split_at_mut(split);
    quicksort(left, depth + 1);
    quicksort(right, depth + 1);
}

fn median3<T: SortKey>(a: T, b: T, c: T) -> T {
    use std::cmp::Ordering::Less;
    let (lo, hi) = if cmp_keys(&a, &b) == Less {
        (a, b)
    } else {
        (b, a)
    };
    if cmp_keys(&c, &lo) == Less {
        lo
    } else if cmp_keys(&hi, &c) == Less {
        hi
    } else {
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::workload::{few_distinct_keys, random_keys, random_u64_keys, sorted_keys};

    fn is_sorted<T: SortKey>(data: &[T]) -> bool {
        data.windows(2).all(|w| w[0] <= w[1])
    }

    fn check_sorts_like_std(mut data: Vec<f64>) {
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        seq_sample_sort(&mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn sorts_random_inputs_of_many_sizes() {
        for &n in &[0usize, 1, 2, 33, 1000, 2048, 2049, 10_000, 50_000] {
            check_sorts_like_std(random_keys(n, n as u64 + 1));
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        check_sorts_like_std(sorted_keys(10_000));
        let mut reversed = sorted_keys(10_000);
        reversed.reverse();
        check_sorts_like_std(reversed);
        check_sorts_like_std(few_distinct_keys(20_000, 3, 7));
        check_sorts_like_std(vec![1.0; 5000]);
    }

    #[test]
    fn sorts_integer_keys() {
        let mut data = random_u64_keys(30_000, 3);
        let mut expect = data.clone();
        expect.sort_unstable();
        seq_sample_sort(&mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn small_sort_paths() {
        let mut tiny = vec![3.0, 1.0, 2.0];
        small_sort(&mut tiny);
        assert!(is_sorted(&tiny));
        let mut mid = random_keys(500, 9);
        small_sort(&mut mid);
        assert!(is_sorted(&mid));
    }
}
