//! PACO SORT (Sect. III-G, Theorem 16).
//!
//! The algorithm, exactly as the paper lists it:
//!
//! 1. **Pivot selection** — pick `k·p` samples uniformly at random with
//!    oversampling ratio `k = Θ(ln n)`, sort them with the sequential sample
//!    sort, and keep every `k`-th sample as one of the `p − 1` pivots.  With
//!    `k ≥ 2(c+1)/(1+ε)·ln n` every processor ends up with at most
//!    `(1 + ε)·n/p` keys w.h.p. (the proof adapts Blelloch et al.'s
//!    Theorem B.4).
//! 2. **Partition** — each processor takes an `n/p ± 1` chunk of the input and
//!    partitions it into `p` sub-chunks by the pivots (we use a binary search
//!    per key, `Θ(log p)` comparisons, the same asymptotics as the paper's
//!    ⌈log₂ p⌉-level partial quicksort).
//! 3. **Count matrix & prefix sums** — the `p × p` matrix `N[i][j]` (keys of
//!    chunk `i` destined for processor `j`) is reduced by column prefix sums to
//!    exact destination offsets.
//! 4. **Redistribution** — an all-to-all copy places every sub-chunk at its
//!    destination (the shared-memory analogue of the matrix transposition in
//!    Blelloch et al.).
//! 5. **Local sort** — every processor runs the *sequential* sample sort on its
//!    received range; ranges are contiguous and ordered by pivot, so the
//!    concatenation is sorted.
//!
//! Step 1 is host-side sequential work; steps 2–5 are compiled into **one**
//! wave-based [`Plan`]: a wave of `p` partition
//! steps, a single-step wave for the count-matrix/prefix-sum reduction (the
//! `O(p²)` sequential fraction the theorem charges to the partitioning
//! overhead, placed on processor 0), a wave of `p` redistribution steps and a
//! wave of `p` local sorts.  Jobs are plain descriptors interpreted against a
//! shared state struct, the waves are the only synchronisation, and the whole
//! sort is a single four-barrier pool pass.

use crate::seq::{seq_sample_sort, small_sort};
use crate::{cmp_keys, SortKey};
use paco_core::shared::SharedSlice;
use paco_runtime::schedule::{Plan, Step};
use paco_runtime::WorkerPool;
use parking_lot::Mutex;
use rand::Rng;

/// Below this size the parallel machinery is pure overhead.
const SMALL_SORT: usize = 1 << 14;

/// Sort `data` in place on `pool.p()` processors with the default
/// oversampling ratio `k = max(16, ⌈2·ln n⌉)`.
pub fn paco_sort<T: SortKey>(data: &mut [T], pool: &WorkerPool) {
    let n = data.len();
    let k = ((2.0 * (n.max(2) as f64).ln()).ceil() as usize).max(16);
    paco_sort_with_oversampling(data, pool, k);
}

/// One step of the compiled sort schedule, interpreted against [`SortState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SortJob {
    /// Step 2: partition source chunk `i` (`lo..hi` of the input) by the
    /// pivots into `p` destination buckets.
    Partition { i: usize, lo: usize, hi: usize },
    /// Step 3: reduce the `p × p` count matrix with column prefix sums into
    /// exact destination offsets (sequential, on processor 0).
    Offsets,
    /// Step 4: destination `j` copies every sub-chunk addressed to it into
    /// its contiguous scratch range.
    Scatter { j: usize },
    /// Step 5: destination `j` sorts its scratch range with the sequential
    /// sample sort.
    LocalSort { j: usize },
}

/// Shared state the sort plan's jobs communicate through.  Each slot is
/// written by exactly one step and only read by steps in later waves; the
/// mutexes exist to keep the interpreter safe code, and the only read-side
/// sharing (every scatter step reads every `grouped[i]`) is staggered so the
/// wave stays parallel.
struct SortState<T> {
    /// `grouped[i][j]`: keys of source chunk `i` destined for processor `j`.
    grouped: Vec<Mutex<Vec<Vec<T>>>>,
    /// `(dest_start, offsets)`: destination ranges and per-(source,
    /// destination) scatter offsets, produced by [`SortJob::Offsets`].
    layout: Mutex<(Vec<usize>, Vec<Vec<usize>>)>,
    /// The redistribution target; scatter/local-sort steps own disjoint
    /// ranges of it.
    scratch: SharedSlice<T>,
}

/// [`paco_sort`] with an explicit oversampling ratio `k`.
pub fn paco_sort_with_oversampling<T: SortKey>(data: &mut [T], pool: &WorkerPool, k: usize) {
    let n = data.len();
    let p = pool.p();
    if n <= SMALL_SORT || p == 1 {
        seq_sample_sort(data);
        return;
    }

    // ---- Step 1 (host side): pivots from an oversampled random sample.
    let mut rng = paco_core::workload::rng(0xc0de_5eed ^ n as u64);
    let sample_size = (k * p).min(n);
    let mut sample: Vec<T> = (0..sample_size)
        .map(|_| data[rng.gen_range(0..n)])
        .collect();
    small_sort(&mut sample);
    let pivots: Vec<T> = (1..p)
        .map(|i| sample[(i * sample_size / p).min(sample_size - 1)])
        .collect();

    // ---- Steps 2–5 as one four-wave plan.
    let plan = Plan::from_waves(
        p,
        vec![
            (0..p)
                .map(|i| Step {
                    proc: i,
                    job: SortJob::Partition {
                        i,
                        lo: i * n / p,
                        hi: (i + 1) * n / p,
                    },
                })
                .collect(),
            vec![Step {
                proc: 0,
                job: SortJob::Offsets,
            }],
            (0..p)
                .map(|j| Step {
                    proc: j,
                    job: SortJob::Scatter { j },
                })
                .collect(),
            (0..p)
                .map(|j| Step {
                    proc: j,
                    job: SortJob::LocalSort { j },
                })
                .collect(),
        ],
    );

    let state = SortState {
        grouped: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
        layout: Mutex::new((Vec::new(), Vec::new())),
        scratch: SharedSlice::new(n, data[0]),
    };
    let pivots = &pivots;
    let data_ref: &[T] = data;
    plan.execute(pool, |_, &job| match job {
        SortJob::Partition { i, lo, hi } => {
            let mut buckets: Vec<Vec<T>> = (0..pivots.len() + 1).map(|_| Vec::new()).collect();
            for x in &data_ref[lo..hi] {
                buckets[bucket_of(x, pivots)].push(*x);
            }
            *state.grouped[i].lock() = buckets;
        }
        SortJob::Offsets => {
            // The p×p count matrix and its column prefix sums give every
            // (source, destination) sub-chunk an exact offset in the output.
            let mut dest_start = vec![0usize; p + 1];
            let mut offsets = vec![vec![0usize; p]; p];
            let grouped: Vec<_> = state.grouped.iter().map(|g| g.lock()).collect();
            for j in 0..p {
                dest_start[j + 1] =
                    dest_start[j] + grouped.iter().map(|row| row[j].len()).sum::<usize>();
            }
            debug_assert_eq!(dest_start[p], n);
            for j in 0..p {
                let mut acc = dest_start[j];
                for (i, row) in grouped.iter().enumerate() {
                    offsets[i][j] = acc;
                    acc += row[j].len();
                }
            }
            *state.layout.lock() = (dest_start, offsets);
        }
        SortJob::Scatter { j } => {
            // Copy the (small) layout data out and release the lock before
            // the O(n/p) copy loop — holding it would serialize the wave.
            let (lo, hi, my_offsets) = {
                let layout = state.layout.lock();
                let offs: Vec<usize> = layout.1.iter().map(|row| row[j]).collect();
                (layout.0[j], layout.0[j + 1], offs)
            };
            // SAFETY: destination ranges are disjoint across the wave's steps
            // and no other step touches the scratch this wave.
            let part = unsafe { state.scratch.slice_mut(lo..hi) };
            // Stagger the source traversal (classic all-to-all) so the p
            // scatter steps do not convoy on the same `grouped[i]` mutex.
            for di in 0..p {
                let i = (j + di) % p;
                let row = state.grouped[i].lock();
                let bucket = &row[j];
                let start = my_offsets[i] - lo;
                part[start..start + bucket.len()].copy_from_slice(bucket);
            }
        }
        SortJob::LocalSort { j } => {
            let (lo, hi) = {
                let layout = state.layout.lock();
                (layout.0[j], layout.0[j + 1])
            };
            // SAFETY: as above — this step exclusively owns its range.
            seq_sample_sort(unsafe { state.scratch.slice_mut(lo..hi) });
        }
    });

    data.copy_from_slice(&state.scratch.snapshot());
}

fn bucket_of<T: SortKey>(x: &T, pivots: &[T]) -> usize {
    let mut lo = 0usize;
    let mut hi = pivots.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cmp_keys(&pivots[mid], x) == std::cmp::Ordering::Less {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::workload::{few_distinct_keys, random_keys, sorted_keys};

    fn check(mut data: Vec<f64>, p: usize) {
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pool = WorkerPool::new(p);
        paco_sort(&mut data, &pool);
        assert_eq!(data, expect, "p={p}");
    }

    #[test]
    fn sorts_random_inputs_for_various_p() {
        for &p in &[1usize, 2, 3, 5, 7, 8] {
            check(random_keys(60_000, p as u64), p);
        }
    }

    #[test]
    fn sorts_small_and_empty_inputs() {
        check(vec![], 4);
        check(vec![1.0], 4);
        check(random_keys(100, 1), 4);
        check(random_keys(SMALL_SORT + 1, 2), 3);
    }

    #[test]
    fn sorts_adversarial_inputs() {
        check(sorted_keys(80_000), 5);
        let mut rev = sorted_keys(80_000);
        rev.reverse();
        check(rev, 5);
        check(few_distinct_keys(70_000, 2, 9), 6);
        check(vec![0.25; 40_000], 7);
    }

    #[test]
    fn explicit_low_oversampling_still_correct() {
        let mut data = random_keys(50_000, 77);
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pool = WorkerPool::new(4);
        paco_sort_with_oversampling(&mut data, &pool, 2);
        assert_eq!(data, expect);
    }

    #[test]
    fn load_balance_is_within_the_high_probability_bound() {
        // With k = Θ(ln n) oversampling the largest destination chunk should be
        // close to n/p.  We recompute the destination sizes by re-running the
        // pivot selection logic indirectly: sort and check the spread of equal
        // splits — instead, simply verify the sort is correct for a skewed
        // (lognormal-ish) input where naive pivoting would badly unbalance.
        let n = 120_000;
        let skewed: Vec<f64> = random_keys(n, 5).into_iter().map(|x| x * x * x).collect();
        check(skewed, 6);
    }
}
