//! PACO SORT (Sect. III-G, Theorem 16).
//!
//! The algorithm, exactly as the paper lists it:
//!
//! 1. **Pivot selection** — pick `k·p` samples uniformly at random with
//!    oversampling ratio `k = Θ(ln n)`, sort them with the sequential sample
//!    sort, and keep every `k`-th sample as one of the `p − 1` pivots.  With
//!    `k ≥ 2(c+1)/(1+ε)·ln n` every processor ends up with at most
//!    `(1 + ε)·n/p` keys w.h.p. (the proof adapts Blelloch et al.'s
//!    Theorem B.4).
//! 2. **Partition** — each processor takes an `n/p ± 1` chunk of the input and
//!    partitions it into `p` sub-chunks by the pivots (we use a binary search
//!    per key, `Θ(log p)` comparisons, the same asymptotics as the paper's
//!    ⌈log₂ p⌉-level partial quicksort).
//! 3. **Count matrix & prefix sums** — the `p × p` matrix `N[i][j]` (keys of
//!    chunk `i` destined for processor `j`) is reduced by column prefix sums to
//!    exact destination offsets.
//! 4. **Redistribution** — an all-to-all copy places every sub-chunk at its
//!    destination (the shared-memory analogue of the matrix transposition in
//!    Blelloch et al.).
//! 5. **Local sort** — every processor runs the *sequential* sample sort on its
//!    received range; ranges are contiguous and ordered by pivot, so the
//!    concatenation is sorted.
//!
//! Step 1 is host-side work done by [`SortRun::prepare`]; steps 2–5 are
//! compiled into **one** wave-based [`Plan`]: a wave of `p` partition steps, a
//! single-step wave for the count-matrix/prefix-sum reduction (the `O(p²)`
//! sequential fraction the theorem charges to the partitioning overhead,
//! placed on processor 0), a wave of `p` redistribution steps and a wave of
//! `p` local sorts.  Jobs are plain descriptors interpreted against the run's
//! shared state, the waves are the only synchronisation, and the whole sort
//! is a single four-barrier pool pass — which also means independent sorts
//! batch wave-by-wave (`Plan::batch`): a batch of `k` sorts still costs four
//! barriers, not `4k`.

use crate::seq::{seq_sample_sort, small_sort};
use crate::{cmp_keys, SortKey};
use paco_core::arena::ScratchArena;
use paco_core::proc_list::ProcId;
use paco_core::shared::SharedSlice;
use paco_runtime::schedule::{Plan, Step};
use parking_lot::Mutex;
use rand::Rng;
use std::sync::Arc;

/// Below this size the parallel machinery is pure overhead.
const SMALL_SORT: usize = 1 << 14;

/// One step of the compiled sort schedule, interpreted by [`SortRun::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortJob {
    /// Step 2: partition source chunk `i` (`lo..hi` of the input) by the
    /// pivots into `p` destination buckets.
    Partition {
        /// Source chunk index.
        i: usize,
        /// First input index of the chunk.
        lo: usize,
        /// One past the last input index of the chunk.
        hi: usize,
    },
    /// Step 3: reduce the `p × p` count matrix with column prefix sums into
    /// exact destination offsets (sequential, on processor 0).
    Offsets,
    /// Step 4: destination `j` copies every sub-chunk addressed to it into
    /// its contiguous scratch range.
    Scatter {
        /// Destination processor index.
        j: usize,
    },
    /// Step 5: destination `j` sorts its scratch range with the sequential
    /// sample sort.
    LocalSort {
        /// Destination processor index.
        j: usize,
    },
    /// Degenerate instance (tiny input or `p == 1`): sort the whole scratch
    /// buffer sequentially in one step.
    Seq,
}

/// A prepared PACO SORT instance: pivots already selected, the four-wave plan
/// compiled, and the shared state (buckets, layout, scratch) its jobs
/// communicate through.  Each state slot is written by exactly one step and
/// only read by steps in later waves; the mutexes keep the interpreter safe
/// code, and the only read-side sharing (every scatter step reads every
/// `grouped[i]`) is staggered so the wave stays parallel.  This is the unit
/// the service layer's `Session` schedules — alone, in batches, or mixed with
/// other workloads.  The schedule itself depends only on `(n, p)` — see
/// [`plan_sort`] and [`SortRun::from_plan`].
pub struct SortRun<T> {
    input: Vec<T>,
    pivots: Vec<T>,
    /// `grouped[i][j]`: keys of source chunk `i` destined for processor `j`.
    grouped: Vec<Mutex<Vec<Vec<T>>>>,
    /// `(dest_start, offsets)`: destination ranges and per-(source,
    /// destination) scatter offsets, produced by [`SortJob::Offsets`].
    layout: Mutex<(Vec<usize>, Vec<usize>)>,
    /// The redistribution target; scatter/local-sort steps own disjoint
    /// ranges of it.
    scratch: SharedSlice<T>,
    plan: Arc<Plan<SortJob>>,
    p: usize,
    /// Pool the input buffer returns to at finish (`from_plan_in` runs only).
    arena: Option<Arc<ScratchArena>>,
}

/// Compile the structural sort schedule for `n` keys on `p` processors.
///
/// The schedule is workload-independent: it depends only on `(n, p)` (the
/// pivots are bind-time data selected from the actual keys).  Degenerate
/// instances compile too — an empty input is an empty plan, and a tiny input
/// (or `p == 1`) is a single sequential-sort step — so a cached plan can be
/// bound to any same-length input via [`SortRun::from_plan`].
pub fn plan_sort(n: usize, p: usize) -> Plan<SortJob> {
    if n == 0 {
        return Plan::empty(p.max(1));
    }
    if n <= SMALL_SORT || p == 1 {
        return Plan::single_wave(
            p.max(1),
            vec![Step {
                proc: 0,
                job: SortJob::Seq,
            }],
        );
    }
    // Steps 2–5 as one four-wave plan.
    Plan::from_waves(
        p,
        vec![
            (0..p)
                .map(|i| Step {
                    proc: i,
                    job: SortJob::Partition {
                        i,
                        lo: i * n / p,
                        hi: (i + 1) * n / p,
                    },
                })
                .collect(),
            vec![Step {
                proc: 0,
                job: SortJob::Offsets,
            }],
            (0..p)
                .map(|j| Step {
                    proc: j,
                    job: SortJob::Scatter { j },
                })
                .collect(),
            (0..p)
                .map(|j| Step {
                    proc: j,
                    job: SortJob::LocalSort { j },
                })
                .collect(),
        ],
    )
}

impl<T: SortKey> SortRun<T> {
    /// Select pivots and compile the four-wave schedule for `p` processors
    /// with oversampling ratio `k`.
    pub fn prepare(data: Vec<T>, p: usize, k: usize) -> Self {
        let plan = Arc::new(plan_sort(data.len(), p));
        Self::from_plan(data, plan, p, k)
    }

    /// Bind keys to an already-compiled (typically cached) plan.  The plan
    /// must have been produced by [`plan_sort`] for exactly `data.len()` keys
    /// and this `p`; pivot selection (step 1, the only data-dependent part)
    /// happens here.
    pub fn from_plan(data: Vec<T>, plan: Arc<Plan<SortJob>>, p: usize, k: usize) -> Self {
        let n = data.len();
        if n == 0 || n <= SMALL_SORT || p == 1 {
            return Self::degenerate(data, p, plan);
        }
        let pivots = Self::select_pivots(&data, p, k);
        let scratch = SharedSlice::new(n, data[0]);
        Self {
            input: data,
            pivots,
            grouped: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            layout: Mutex::new((Vec::new(), Vec::new())),
            scratch,
            plan,
            p,
            arena: None,
        }
    }

    /// [`Self::from_plan`], but with the redistribution scratch checked out of
    /// `arena` and the input buffer returned to it at [`Self::finish`] — warm
    /// passes through the same arena then sort without touching the global
    /// allocator for their O(n) buffers.
    pub fn from_plan_in(
        data: Vec<T>,
        plan: Arc<Plan<SortJob>>,
        p: usize,
        k: usize,
        arena: Arc<ScratchArena>,
    ) -> Self {
        let n = data.len();
        if n == 0 || n <= SMALL_SORT || p == 1 {
            let mut run = Self::degenerate(data, p, plan);
            run.arena = Some(arena);
            return run;
        }
        let pivots = Self::select_pivots(&data, p, k);
        let scratch = SharedSlice::from_vec(arena.take_vec(n, data[0]));
        Self {
            input: data,
            pivots,
            grouped: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            layout: Mutex::new((Vec::new(), Vec::new())),
            scratch,
            plan,
            p,
            arena: Some(arena),
        }
    }

    /// Step 1 (host side): pivots from an oversampled random sample.
    fn select_pivots(data: &[T], p: usize, k: usize) -> Vec<T> {
        let n = data.len();
        let mut rng = paco_core::workload::rng(0xc0de_5eed ^ n as u64);
        let sample_size = (k.max(1) * p).min(n);
        let mut sample: Vec<T> = (0..sample_size)
            .map(|_| data[rng.gen_range(0..n)])
            .collect();
        small_sort(&mut sample);
        (1..p)
            .map(|i| sample[(i * sample_size / p).min(sample_size - 1)])
            .collect()
    }

    /// A run whose plan needs no partition/scatter state: the input moves
    /// straight into the scratch buffer and is sorted there (or is empty).
    fn degenerate(data: Vec<T>, p: usize, plan: Arc<Plan<SortJob>>) -> Self {
        Self {
            input: Vec::new(),
            pivots: Vec::new(),
            grouped: Vec::new(),
            layout: Mutex::new((Vec::new(), Vec::new())),
            scratch: SharedSlice::from_vec(data),
            plan,
            p: p.max(1),
            arena: None,
        }
    }

    /// The compiled wave schedule.
    pub fn plan(&self) -> &Plan<SortJob> {
        &self.plan
    }

    /// Interpret one job against the shared state.
    pub fn step(&self, _proc: ProcId, job: &SortJob) {
        let p = self.p;
        let n = self.scratch.len();
        match *job {
            SortJob::Partition { i, lo, hi } => {
                let mut buckets: Vec<Vec<T>> =
                    (0..self.pivots.len() + 1).map(|_| Vec::new()).collect();
                for x in &self.input[lo..hi] {
                    buckets[bucket_of(x, &self.pivots)].push(*x);
                }
                *self.grouped[i].lock() = buckets;
            }
            SortJob::Offsets => {
                // The p×p count matrix and its column prefix sums give every
                // (source, destination) sub-chunk an exact offset in the
                // output; the flat `offsets` vector is indexed `[i * p + j]`.
                let mut dest_start = vec![0usize; p + 1];
                let mut offsets = vec![0usize; p * p];
                let grouped: Vec<_> = self.grouped.iter().map(|g| g.lock()).collect();
                for j in 0..p {
                    dest_start[j + 1] =
                        dest_start[j] + grouped.iter().map(|row| row[j].len()).sum::<usize>();
                }
                debug_assert_eq!(dest_start[p], n);
                for j in 0..p {
                    let mut acc = dest_start[j];
                    for (i, row) in grouped.iter().enumerate() {
                        offsets[i * p + j] = acc;
                        acc += row[j].len();
                    }
                }
                *self.layout.lock() = (dest_start, offsets);
            }
            SortJob::Scatter { j } => {
                // Copy the (small) layout data out and release the lock before
                // the O(n/p) copy loop — holding it would serialize the wave.
                let (lo, hi, my_offsets) = {
                    let layout = self.layout.lock();
                    let offs: Vec<usize> = (0..p).map(|i| layout.1[i * p + j]).collect();
                    (layout.0[j], layout.0[j + 1], offs)
                };
                // SAFETY: destination ranges are disjoint across the wave's
                // steps and no other step touches the scratch this wave.
                let part = unsafe { self.scratch.slice_mut(lo..hi) };
                // Stagger the source traversal (classic all-to-all) so the p
                // scatter steps do not convoy on the same `grouped[i]` mutex.
                for di in 0..p {
                    let i = (j + di) % p;
                    let row = self.grouped[i].lock();
                    let bucket = &row[j];
                    let start = my_offsets[i] - lo;
                    part[start..start + bucket.len()].copy_from_slice(bucket);
                }
            }
            SortJob::LocalSort { j } => {
                let (lo, hi) = {
                    let layout = self.layout.lock();
                    (layout.0[j], layout.0[j + 1])
                };
                // SAFETY: as above — this step exclusively owns its range.
                seq_sample_sort(unsafe { self.scratch.slice_mut(lo..hi) });
            }
            SortJob::Seq => {
                // SAFETY: the degenerate plan has exactly this one step.
                seq_sample_sort(unsafe { self.scratch.slice_mut(0..n) });
            }
        }
    }

    /// Read the sorted keys off the completed run.  The scratch buffer *is*
    /// the result (moved out, not copied); an arena-bound run recycles its
    /// spent input buffer.
    pub fn finish(self) -> Vec<T> {
        if let Some(arena) = &self.arena {
            if !self.input.is_empty() {
                arena.put_vec(self.input);
            }
        }
        self.scratch.into_vec()
    }
}

fn bucket_of<T: SortKey>(x: &T, pivots: &[T]) -> usize {
    let mut lo = 0usize;
    let mut hi = pivots.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cmp_keys(&pivots[mid], x) == std::cmp::Ordering::Less {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::workload::{few_distinct_keys, random_keys, sorted_keys};
    use paco_runtime::WorkerPool;

    /// Prepare-and-run helper standing in for the removed pool-threading
    /// wrappers; real callers go through `paco_service::Session`.
    fn paco_sort_with_oversampling<T: SortKey>(data: &mut [T], pool: &WorkerPool, k: usize) {
        let run = SortRun::prepare(data.to_vec(), pool.p(), k);
        run.plan().execute(pool, |proc, job| run.step(proc, job));
        data.copy_from_slice(&run.finish());
    }

    fn check(mut data: Vec<f64>, p: usize) {
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pool = WorkerPool::new(p);
        let k = paco_core::tuning::Tuning::default().sort_k(data.len());
        paco_sort_with_oversampling(&mut data, &pool, k);
        assert_eq!(data, expect, "p={p}");
    }

    #[test]
    fn sorts_random_inputs_for_various_p() {
        for &p in &[1usize, 2, 3, 5, 7, 8] {
            check(random_keys(60_000, p as u64), p);
        }
    }

    #[test]
    fn sorts_small_and_empty_inputs() {
        check(vec![], 4);
        check(vec![1.0], 4);
        check(random_keys(100, 1), 4);
        check(random_keys(SMALL_SORT + 1, 2), 3);
    }

    #[test]
    fn sorts_adversarial_inputs() {
        check(sorted_keys(80_000), 5);
        let mut rev = sorted_keys(80_000);
        rev.reverse();
        check(rev, 5);
        check(few_distinct_keys(70_000, 2, 9), 6);
        check(vec![0.25; 40_000], 7);
    }

    #[test]
    fn explicit_low_oversampling_still_correct() {
        let mut data = random_keys(50_000, 77);
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pool = WorkerPool::new(4);
        paco_sort_with_oversampling(&mut data, &pool, 2);
        assert_eq!(data, expect);
    }

    #[test]
    fn big_instance_plan_is_four_waves_regardless_of_size() {
        // The whole sort is one four-barrier pool pass, so batches of sorts
        // merge into four waves total.
        for &n in &[SMALL_SORT + 1, 100_000] {
            let run = SortRun::prepare(random_keys(n, 3), 4, 8);
            assert_eq!(run.plan().barriers(), 4, "n={n}");
        }
        let tiny = SortRun::prepare(random_keys(64, 4), 4, 8);
        assert_eq!(tiny.plan().barriers(), 1);
        let empty = SortRun::prepare(Vec::<f64>::new(), 4, 8);
        assert_eq!(empty.plan().barriers(), 0);
    }

    #[test]
    fn load_balance_is_within_the_high_probability_bound() {
        // With k = Θ(ln n) oversampling the largest destination chunk should be
        // close to n/p.  We recompute the destination sizes by re-running the
        // pivot selection logic indirectly: sort and check the spread of equal
        // splits — instead, simply verify the sort is correct for a skewed
        // (lognormal-ish) input where naive pivoting would badly unbalance.
        let n = 120_000;
        let skewed: Vec<f64> = random_keys(n, 5).into_iter().map(|x| x * x * x).collect();
        check(skewed, 6);
    }
}
