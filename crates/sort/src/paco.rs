//! PACO SORT (Sect. III-G, Theorem 16).
//!
//! The algorithm, exactly as the paper lists it:
//!
//! 1. **Pivot selection** — pick `k·p` samples uniformly at random with
//!    oversampling ratio `k = Θ(ln n)`, sort them with the sequential sample
//!    sort, and keep every `k`-th sample as one of the `p − 1` pivots.  With
//!    `k ≥ 2(c+1)/(1+ε)·ln n` every processor ends up with at most
//!    `(1 + ε)·n/p` keys w.h.p. (the proof adapts Blelloch et al.'s
//!    Theorem B.4).
//! 2. **Partition** — each processor takes an `n/p ± 1` chunk of the input and
//!    partitions it into `p` sub-chunks by the pivots (we use a binary search
//!    per key, `Θ(log p)` comparisons, the same asymptotics as the paper's
//!    ⌈log₂ p⌉-level partial quicksort).
//! 3. **Count matrix & prefix sums** — the `p × p` matrix `N[i][j]` (keys of
//!    chunk `i` destined for processor `j`) is reduced by column prefix sums to
//!    exact destination offsets.
//! 4. **Redistribution** — an all-to-all copy places every sub-chunk at its
//!    destination (the shared-memory analogue of the matrix transposition in
//!    Blelloch et al.).
//! 5. **Local sort** — every processor runs the *sequential* sample sort on its
//!    received range; ranges are contiguous and ordered by pivot, so the
//!    concatenation is sorted.
//!
//! Steps 2, 4 and 5 run on the processor-aware pool with one task per
//! processor; steps 1 and 3 are the `O(kp·log(kp))`/`O(p²)` sequential
//! fractions the theorem charges to the partitioning overhead.

use crate::seq::{seq_sample_sort, small_sort};
use crate::{cmp_keys, SortKey};
use paco_runtime::WorkerPool;
use rand::Rng;

/// Below this size the parallel machinery is pure overhead.
const SMALL_SORT: usize = 1 << 14;

/// Sort `data` in place on `pool.p()` processors with the default
/// oversampling ratio `k = max(16, ⌈2·ln n⌉)`.
pub fn paco_sort<T: SortKey>(data: &mut [T], pool: &WorkerPool) {
    let n = data.len();
    let k = ((2.0 * (n.max(2) as f64).ln()).ceil() as usize).max(16);
    paco_sort_with_oversampling(data, pool, k);
}

/// [`paco_sort`] with an explicit oversampling ratio `k`.
pub fn paco_sort_with_oversampling<T: SortKey>(data: &mut [T], pool: &WorkerPool, k: usize) {
    let n = data.len();
    let p = pool.p();
    if n <= SMALL_SORT || p == 1 {
        seq_sample_sort(data);
        return;
    }

    // ---- Step 1: pivots from an oversampled random sample.
    let mut rng = paco_core::workload::rng(0xc0de_5eed ^ n as u64);
    let sample_size = (k * p).min(n);
    let mut sample: Vec<T> = (0..sample_size)
        .map(|_| data[rng.gen_range(0..n)])
        .collect();
    small_sort(&mut sample);
    let pivots: Vec<T> = (1..p)
        .map(|i| sample[(i * sample_size / p).min(sample_size - 1)])
        .collect();

    // ---- Step 2: every processor partitions its chunk; produces, per chunk,
    // the keys grouped by destination plus the count vector N[i][*].
    let chunk_bounds: Vec<(usize, usize)> = (0..p).map(|i| (i * n / p, (i + 1) * n / p)).collect();
    let mut grouped: Vec<Vec<Vec<T>>> = (0..p).map(|_| Vec::new()).collect();
    {
        let pivots = &pivots;
        let data_ref: &[T] = data;
        pool.scope(|s| {
            for (i, slot) in grouped.iter_mut().enumerate() {
                let (lo, hi) = chunk_bounds[i];
                s.spawn_on(i, move || {
                    let mut buckets: Vec<Vec<T>> =
                        (0..pivots.len() + 1).map(|_| Vec::new()).collect();
                    for x in &data_ref[lo..hi] {
                        buckets[bucket_of(x, pivots)].push(*x);
                    }
                    *slot = buckets;
                });
            }
        });
    }

    // ---- Step 3: the p×p count matrix and its column prefix sums give every
    // (source, destination) sub-chunk an exact offset in the output.
    let mut dest_len = vec![0usize; p];
    for row in &grouped {
        for (j, bucket) in row.iter().enumerate() {
            dest_len[j] += bucket.len();
        }
    }
    let mut dest_start = vec![0usize; p + 1];
    for j in 0..p {
        dest_start[j + 1] = dest_start[j] + dest_len[j];
    }
    debug_assert_eq!(dest_start[p], n);
    // offset[i][j] = where chunk i's bucket j lands inside destination j.
    let mut offsets = vec![vec![0usize; p]; p];
    for j in 0..p {
        let mut acc = dest_start[j];
        for (i, row) in grouped.iter().enumerate() {
            offsets[i][j] = acc;
            acc += row[j].len();
        }
    }

    // ---- Step 4: all-to-all redistribution into a scratch buffer.  Each
    // destination processor copies every sub-chunk addressed to it, so writes
    // are disjoint by construction.
    let mut scratch: Vec<T> = data.to_vec();
    {
        let grouped_ref = &grouped;
        let offsets_ref = &offsets;
        let scratch_parts = split_by_lengths(&mut scratch, &dest_len);
        pool.scope(|s| {
            for (j, part) in scratch_parts.into_iter().enumerate() {
                let base = dest_start[j];
                s.spawn_on(j, move || {
                    for i in 0..grouped_ref.len() {
                        let bucket = &grouped_ref[i][j];
                        let start = offsets_ref[i][j] - base;
                        part[start..start + bucket.len()].copy_from_slice(bucket);
                    }
                });
            }
        });
    }

    // ---- Step 5: local sequential sample sort per destination range.
    {
        let parts = split_by_lengths(&mut scratch, &dest_len);
        pool.scope(|s| {
            for (j, part) in parts.into_iter().enumerate() {
                s.spawn_on(j, move || seq_sample_sort(part));
            }
        });
    }

    data.copy_from_slice(&scratch);
}

/// Split a mutable slice into consecutive parts of the given lengths.
fn split_by_lengths<'a, T>(mut data: &'a mut [T], lens: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(lens.len());
    for &len in lens {
        let (head, tail) = data.split_at_mut(len);
        out.push(head);
        data = tail;
    }
    out
}

fn bucket_of<T: SortKey>(x: &T, pivots: &[T]) -> usize {
    let mut lo = 0usize;
    let mut hi = pivots.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cmp_keys(&pivots[mid], x) == std::cmp::Ordering::Less {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::workload::{few_distinct_keys, random_keys, sorted_keys};

    fn check(mut data: Vec<f64>, p: usize) {
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pool = WorkerPool::new(p);
        paco_sort(&mut data, &pool);
        assert_eq!(data, expect, "p={p}");
    }

    #[test]
    fn sorts_random_inputs_for_various_p() {
        for &p in &[1usize, 2, 3, 5, 7, 8] {
            check(random_keys(60_000, p as u64), p);
        }
    }

    #[test]
    fn sorts_small_and_empty_inputs() {
        check(vec![], 4);
        check(vec![1.0], 4);
        check(random_keys(100, 1), 4);
        check(random_keys(SMALL_SORT + 1, 2), 3);
    }

    #[test]
    fn sorts_adversarial_inputs() {
        check(sorted_keys(80_000), 5);
        let mut rev = sorted_keys(80_000);
        rev.reverse();
        check(rev, 5);
        check(few_distinct_keys(70_000, 2, 9), 6);
        check(vec![0.25; 40_000], 7);
    }

    #[test]
    fn explicit_low_oversampling_still_correct() {
        let mut data = random_keys(50_000, 77);
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pool = WorkerPool::new(4);
        paco_sort_with_oversampling(&mut data, &pool, 2);
        assert_eq!(data, expect);
    }

    #[test]
    fn load_balance_is_within_the_high_probability_bound() {
        // With k = Θ(ln n) oversampling the largest destination chunk should be
        // close to n/p.  We recompute the destination sizes by re-running the
        // pivot selection logic indirectly: sort and check the spread of equal
        // splits — instead, simply verify the sort is correct for a skewed
        // (lognormal-ish) input where naive pivoting would badly unbalance.
        let n = 120_000;
        let skewed: Vec<f64> = random_keys(n, 5).into_iter().map(|x| x * x * x).collect();
        check(skewed, 6);
    }
}
