//! Processor-oblivious low-depth sample sort (the PBBS competitor of Fig. 12b).
//!
//! The structure follows the PBBS / Blelloch–Gibbons–Simhadri low-depth sample
//! sort: pick `Θ(√n)` pivots from an oversampled random sample, cut the input
//! into `Θ(√n)` blocks, have every block count and bucket its own elements (in
//! parallel), compute global bucket offsets with prefix sums, scatter
//! (the "matrix transposition" step), and finally sort every bucket in
//! parallel.  Every parallel step is a rayon data-parallel loop — the algorithm
//! never looks at the processor count, which is what makes it the PO baseline.

use crate::seq::{seq_sample_sort, small_sort};
use crate::{cmp_keys, SortKey};
use rayon::prelude::*;

/// Inputs of at most this length are sorted directly.
const SMALL_SORT: usize = 4096;

/// Sort `data` in place with the PBBS-style low-depth sample sort.
pub fn po_sample_sort<T: SortKey>(data: &mut [T]) {
    let n = data.len();
    if n <= SMALL_SORT {
        small_sort(data);
        return;
    }

    // ---- Pivots: oversample by 8, sort the sample, take √n - 1 splitters.
    let buckets = ((n as f64).sqrt() as usize).clamp(2, 4096);
    let oversample = 8;
    let sample_size = (buckets * oversample).min(n);
    let mut rng = paco_core::workload::rng(0xb10c_5eed);
    let mut sample: Vec<T> = (0..sample_size)
        .map(|_| data[rand::Rng::gen_range(&mut rng, 0..n)])
        .collect();
    small_sort(&mut sample);
    let pivots: Vec<T> = (1..buckets)
        .map(|i| sample[i * sample_size / buckets])
        .collect();

    // ---- Per-block bucket counting (parallel over blocks).
    let block_size = n.div_ceil(buckets);
    let block_counts: Vec<Vec<usize>> = data
        .par_chunks(block_size)
        .map(|chunk| {
            let mut counts = vec![0usize; buckets];
            for x in chunk {
                counts[bucket_of(x, &pivots)] += 1;
            }
            counts
        })
        .collect();

    // ---- Global offsets: bucket-major prefix sums over (bucket, block).
    let nblocks = block_counts.len();
    let mut offsets = vec![0usize; buckets * nblocks + 1];
    {
        let mut acc = 0usize;
        for b in 0..buckets {
            for (blk, counts) in block_counts.iter().enumerate() {
                offsets[b * nblocks + blk] = acc;
                acc += counts[b];
            }
        }
        offsets[buckets * nblocks] = acc;
        debug_assert_eq!(acc, n);
    }

    // ---- Scatter into a scratch buffer (parallel over blocks; each block owns
    // a disjoint set of destination cursors (bucket, block)).
    let mut scratch: Vec<T> = data.to_vec();
    {
        let scratch_ptr = SendPtr(scratch.as_mut_ptr());
        data.par_chunks(block_size)
            .enumerate()
            .for_each(|(blk, chunk)| {
                // Rebind so the closure captures the whole `SendPtr` (which is
                // Sync) rather than disjointly borrowing its raw-pointer field.
                #[allow(clippy::redundant_locals)]
                let scratch_ptr = scratch_ptr;
                let mut cursors: Vec<usize> =
                    (0..buckets).map(|b| offsets[b * nblocks + blk]).collect();
                for x in chunk {
                    let b = bucket_of(x, &pivots);
                    // SAFETY: cursor (b, blk) walks the half-open range
                    // [offsets[b*nblocks+blk], offsets[b*nblocks+blk+1]) which is
                    // disjoint from every other block's ranges, so no two rayon
                    // tasks ever write the same scratch slot.
                    unsafe {
                        *scratch_ptr.0.add(cursors[b]) = *x;
                    }
                    cursors[b] += 1;
                }
            });
    }

    // ---- Bucket boundaries in the scratch buffer, then parallel bucket sorts.
    let bucket_bounds: Vec<(usize, usize)> = (0..buckets)
        .map(|b| {
            let lo = offsets[b * nblocks];
            let hi = if b + 1 < buckets {
                offsets[(b + 1) * nblocks]
            } else {
                n
            };
            (lo, hi)
        })
        .collect();
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(buckets);
    {
        let mut rest: &mut [T] = &mut scratch;
        let mut consumed = 0usize;
        for &(lo, hi) in &bucket_bounds {
            debug_assert_eq!(lo, consumed);
            let (head, tail) = rest.split_at_mut(hi - lo);
            slices.push(head);
            rest = tail;
            consumed = hi;
        }
    }
    slices
        .into_par_iter()
        .for_each(|bucket| seq_sample_sort(bucket));

    data.copy_from_slice(&scratch);
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only used to write disjoint index ranges from
// different rayon tasks (see the scatter step above).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

fn bucket_of<T: SortKey>(x: &T, pivots: &[T]) -> usize {
    let mut lo = 0usize;
    let mut hi = pivots.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cmp_keys(&pivots[mid], x) == std::cmp::Ordering::Less {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_core::workload::{few_distinct_keys, random_keys, sorted_keys};

    fn check(mut data: Vec<f64>) {
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        po_sample_sort(&mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn sorts_random_inputs() {
        for &n in &[0usize, 1, 100, 5000, 20_000, 100_000] {
            check(random_keys(n, n as u64));
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        check(sorted_keys(50_000));
        let mut rev = sorted_keys(50_000);
        rev.reverse();
        check(rev);
        check(few_distinct_keys(60_000, 2, 5));
        check(vec![7.5; 30_000]);
    }

    #[test]
    fn sorts_integers() {
        let mut data: Vec<i64> = paco_core::workload::random_u64_keys(80_000, 11)
            .into_iter()
            .map(|x| (x % 1_000_000) as i64 - 500_000)
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        po_sample_sort(&mut data);
        assert_eq!(data, expect);
    }
}
