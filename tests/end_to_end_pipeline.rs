//! An end-to-end "application" exercising several PACO algorithms in one
//! pipeline, the way a downstream user would compose the library — through
//! one `paco_service::Session`:
//!
//! 1. generate a batch of noisy sequence pairs and score them with PACO LCS
//!    (one batched pool pass);
//! 2. sort the similarity scores with PACO SORT to find the median pair;
//! 3. build a similarity matrix from the scores and square it (two-hop
//!    similarity) with PACO MM over the (min,+) and (+,*) semirings;
//! 4. check every step against its sequential reference.

use paco_core::matrix::Matrix;
use paco_core::semiring::MinPlus;
use paco_core::workload::related_sequences;
use paco_dp::lcs::lcs_reference;
use paco_matmul::mm_reference;
use paco_service::{Lcs, MatMul, Session, Sort};

#[test]
fn similarity_pipeline_runs_end_to_end() {
    let session = Session::new(4);
    let pairs = 12usize;
    let seq_len = 300usize;

    // Step 1: similarity scores via LCS — the whole batch in one pool pass.
    let inputs: Vec<_> = (0..pairs)
        .map(|i| related_sequences(seq_len, 4, 0.05 + 0.05 * i as f64 / pairs as f64, i as u64))
        .collect();
    let lengths = session.run_batch(inputs.iter().map(|(a, b)| Lcs {
        a: a.clone(),
        b: b.clone(),
    }));
    let mut scores = Vec::with_capacity(pairs);
    for (i, ((a, b), len)) in inputs.iter().zip(&lengths).enumerate() {
        assert_eq!(*len, lcs_reference(a, b), "pair {i}");
        scores.push(*len as f64 / seq_len as f64);
    }

    // Step 2: sort the scores and pick the median.
    let sorted_scores = session.run(Sort {
        keys: scores.clone(),
    });
    assert!(sorted_scores.windows(2).all(|w| w[0] <= w[1]));
    let median = sorted_scores[pairs / 2];
    assert!(
        median > 0.5,
        "related sequences should stay similar, median {median}"
    );

    // Step 3: a small similarity matrix (scores as weights) squared two ways.
    let sim = Matrix::from_fn(pairs, pairs, |i, j| {
        if i == j {
            1.0
        } else {
            (scores[i] * scores[j]).sqrt()
        }
    });
    let two_hop = session.run(MatMul {
        a: sim.clone(),
        b: sim.clone(),
    });
    assert!(mm_reference(&sim, &sim).approx_eq(&two_hop, 1e-9));

    // Tropical variant: the cheapest two-hop "distance" (1 - similarity).
    let dist = Matrix::from_fn(pairs, pairs, |i, j| {
        MinPlus(if i == j {
            0.0
        } else {
            1.0 - (scores[i] * scores[j]).sqrt()
        })
    });
    let relaxed = session.run(MatMul {
        a: dist.clone(),
        b: dist.clone(),
    });
    let expect = mm_reference(&dist, &dist);
    for i in 0..pairs {
        for j in 0..pairs {
            assert!((relaxed.get(i, j).0 - expect.get(i, j).0).abs() < 1e-9);
            // Squaring a metric-like matrix can only shrink entries.
            assert!(relaxed.get(i, j).0 <= dist.get(i, j).0 + 1e-12);
        }
    }
}

/// The pipeline still works when the session is larger than any single
/// dimension of the work items (oversubscription edge case).
#[test]
fn oversubscribed_session_is_harmless() {
    let session = Session::new(8);
    let (a, b) = related_sequences(64, 4, 0.2, 5);
    assert_eq!(
        session.run(Lcs {
            a: a.clone(),
            b: b.clone()
        }),
        lcs_reference(&a, &b)
    );
    let m = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
    let mm = session.run(MatMul {
        a: m.clone(),
        b: m.clone(),
    });
    assert!(mm_reference(&m, &m).approx_eq(&mm, 1e-12));
    assert_eq!(
        session.run(Sort {
            keys: vec![3.0, 1.0, 2.0]
        }),
        vec![1.0, 2.0, 3.0]
    );
}
