//! An end-to-end "application" exercising several PACO algorithms in one
//! pipeline, the way a downstream user would compose the library:
//!
//! 1. generate a batch of noisy sequence pairs and score them with PACO LCS;
//! 2. sort the similarity scores with PACO SORT to find the median pair;
//! 3. build a similarity matrix from the scores and square it (two-hop
//!    similarity) with PACO MM over the (min,+) and (+,*) semirings;
//! 4. check every step against its sequential reference.

use paco_core::matrix::Matrix;
use paco_core::semiring::MinPlus;
use paco_core::workload::related_sequences;
use paco_dp::lcs::{lcs_paco, lcs_reference};
use paco_matmul::{mm_reference, paco_mm_1piece};
use paco_runtime::WorkerPool;
use paco_sort::paco_sort;

#[test]
fn similarity_pipeline_runs_end_to_end() {
    let pool = WorkerPool::new(4);
    let pairs = 12usize;
    let seq_len = 300usize;

    // Step 1: similarity scores via LCS.
    let mut scores = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let (a, b) = related_sequences(seq_len, 4, 0.05 + 0.05 * i as f64 / pairs as f64, i as u64);
        let len = lcs_paco(&a, &b, &pool);
        assert_eq!(len, lcs_reference(&a, &b), "pair {i}");
        scores.push(len as f64 / seq_len as f64);
    }

    // Step 2: sort the scores and pick the median.
    let mut sorted_scores = scores.clone();
    paco_sort(&mut sorted_scores, &pool);
    assert!(sorted_scores.windows(2).all(|w| w[0] <= w[1]));
    let median = sorted_scores[pairs / 2];
    assert!(
        median > 0.5,
        "related sequences should stay similar, median {median}"
    );

    // Step 3: a small similarity matrix (scores as weights) squared two ways.
    let sim = Matrix::from_fn(pairs, pairs, |i, j| {
        if i == j {
            1.0
        } else {
            (scores[i] * scores[j]).sqrt()
        }
    });
    let two_hop = paco_mm_1piece(&sim, &sim, &pool);
    assert!(mm_reference(&sim, &sim).approx_eq(&two_hop, 1e-9));

    // Tropical variant: the cheapest two-hop "distance" (1 - similarity).
    let dist = Matrix::from_fn(pairs, pairs, |i, j| {
        MinPlus(if i == j {
            0.0
        } else {
            1.0 - (scores[i] * scores[j]).sqrt()
        })
    });
    let relaxed = paco_mm_1piece(&dist, &dist, &pool);
    let expect = mm_reference(&dist, &dist);
    for i in 0..pairs {
        for j in 0..pairs {
            assert!((relaxed.get(i, j).0 - expect.get(i, j).0).abs() < 1e-9);
            // Squaring a metric-like matrix can only shrink entries.
            assert!(relaxed.get(i, j).0 <= dist.get(i, j).0 + 1e-12);
        }
    }
}

/// The pipeline still works when the pool is larger than any single dimension
/// of the work items (oversubscription edge case).
#[test]
fn oversubscribed_pool_is_harmless() {
    let pool = WorkerPool::new(8);
    let (a, b) = related_sequences(64, 4, 0.2, 5);
    assert_eq!(lcs_paco(&a, &b, &pool), lcs_reference(&a, &b));
    let m = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
    assert!(mm_reference(&m, &m).approx_eq(&paco_mm_1piece(&m, &m, &pool), 1e-12));
    let mut keys = vec![3.0, 1.0, 2.0];
    paco_sort(&mut keys, &pool);
    assert_eq!(keys, vec![1.0, 2.0, 3.0]);
}
