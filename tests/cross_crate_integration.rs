//! Cross-crate integration tests: the core types, the runtime, the cache
//! simulator and the algorithm crates working together the way the benchmark
//! harness uses them.

use paco_cache_sim::analytic::{cache_bound, BoundParams, Problem, Variant};
use paco_core::machine::{CacheParams, HeteroSpec, MachineConfig};
use paco_core::workload::{random_matrix_wrapping, related_sequences};
use paco_dp::lcs::{lcs_paco_traced, lcs_reference, lcs_sequential_traced};
use paco_matmul::mm_reference;
use paco_matmul::paco_mm::plan_paco_mm_with_base;
use paco_runtime::hetero::ThrottleSpec;
use paco_service::{HeteroMatMul, MatMul, Session};
use paco_tests::interesting_processor_counts;

/// The machine presets drive the analytic bounds, and the bounds agree with the
/// ordering the simulator measures on a scaled-down instance.
#[test]
fn analytic_bounds_and_simulator_tell_the_same_story_for_lcs() {
    let n = 384;
    let (a, b) = related_sequences(n, 4, 0.2, 7);
    let params = CacheParams::new(1024, 8);
    let p = 4;

    let (len_seq, seq) = lcs_sequential_traced(&a, &b, 32, params);
    let (len_paco, paco) = lcs_paco_traced(&a, &b, p, params, 32);
    assert_eq!(len_seq, lcs_reference(&a, &b));
    assert_eq!(len_paco, len_seq);

    // Measured: the PACO schedule's total misses stay within a small factor of
    // the sequential optimum, and the per-processor balance is good.
    let blowup = paco.q_sum() as f64 / seq.q_sum() as f64;
    assert!(blowup < 3.0, "Q_sum blowup {blowup}");
    assert!(paco.q_imbalance() < 2.0);

    // Analytic: the PACO bound also predicts a small blowup over Q1 at these
    // parameters (the additive term is minor), and a far larger one for PO.
    let bp = BoundParams::square(n, p, 1024, 8);
    let q1 = cache_bound(
        Problem::Lcs,
        Variant::Paco,
        BoundParams::square(n, 1, 1024, 8),
    )
    .unwrap();
    let qpaco = cache_bound(Problem::Lcs, Variant::Paco, bp).unwrap();
    let qpo = cache_bound(Problem::Lcs, Variant::Po, bp).unwrap();
    assert!(qpaco / q1 < 8.0);
    assert!(qpo > qpaco);
}

/// The machine preset's heterogeneity spec flows end-to-end into a correct,
/// throughput-aware matrix multiplication.
#[test]
fn machine_preset_heterogeneity_drives_hetero_mm() {
    let machine = MachineConfig::xeon_72core();
    let spec = machine.hetero_spec();
    assert!(!spec.is_homogeneous());
    // Scale the spec down to a pool we can actually run: keep the shape
    // (one fast group at 3x) but only 4 workers.
    let small_spec = HeteroSpec::one_fast_socket(4, 1, 3.0);
    let throttle = ThrottleSpec::from_spec(&small_spec);
    let session = Session::new(4);
    let a = random_matrix_wrapping(96, 64, 1);
    let b = random_matrix_wrapping(64, 80, 2);
    let expect = mm_reference(&a, &b);
    assert_eq!(
        expect,
        session.run(HeteroMatMul {
            a: a.clone(),
            b: b.clone(),
            throttle,
            aware: true,
        })
    );
}

/// The pruned-BFS plan (runtime crate) and the executable 1-PIECE algorithm
/// (matmul crate) agree on correctness for every interesting processor count.
#[test]
fn plans_and_execution_cover_the_same_processor_range() {
    let a = random_matrix_wrapping(120, 70, 3);
    let b = random_matrix_wrapping(70, 90, 4);
    let expect = mm_reference(&a, &b);
    for p in interesting_processor_counts() {
        // The problem is small relative to p, so let the partitioning refine
        // further than the default kernel base case before judging balance.
        let plan = plan_paco_mm_with_base(120, 90, 70, p, 8);
        let report = plan.report();
        assert!(
            (report.total_work - 120.0 * 90.0 * 70.0).abs() < 1e-6,
            "p={p}: plan loses work"
        );
        assert!(
            report.work_imbalance < 1.5,
            "p={p}: imbalance {}",
            report.work_imbalance
        );

        let session = Session::new(p);
        assert_eq!(
            expect,
            session.run(MatMul {
                a: a.clone(),
                b: b.clone()
            }),
            "p={p}"
        );
    }
}

/// Every machine preset produces self-consistent derived quantities.
#[test]
fn machine_presets_are_consistent() {
    for machine in [MachineConfig::xeon_24core(), MachineConfig::xeon_72core()] {
        assert!(machine.rpeak_flops() > 0.0);
        assert_eq!(machine.hetero_spec().p(), machine.p);
        assert!(machine.cache.lines() > 0);
    }
}
