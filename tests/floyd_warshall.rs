//! Cross-crate integration tests of the Floyd–Warshall workload
//! (`paco-graph`): all three variants — sequential cache-oblivious, PO and
//! PACO — must produce *identical* output to the naive triple-loop reference
//! on random `(min, +)` digraphs and boolean adjacency matrices, for
//! arbitrary processor counts (including primes), and the traced replays must
//! reproduce the native results bit-for-bit.
//!
//! Exactness is by construction: `random_digraph` draws integer-valued `f64`
//! weights, whose sums and minima are exact, so there is no tolerance
//! anywhere in this file.

use paco_core::machine::CacheParams;
use paco_core::workload::{random_adjacency, random_digraph};
use paco_graph::{fw_paco_traced, fw_po, fw_reference, fw_seq, fw_seq_traced};
use paco_service::{Apsp, Closure, Session, Tuning};
use proptest::prelude::*;

/// A session whose Floyd–Warshall base-case side is pinned to `base`.
fn fw_session(p: usize, base: usize) -> Session {
    Session::builder()
        .procs(p)
        .tuning(Tuning {
            fw_base: base,
            ..Tuning::default()
        })
        .build()
}

#[test]
fn all_variants_agree_on_min_plus_digraphs() {
    for &(n, base) in &[(1usize, 4usize), (33, 4), (96, 16), (150, 32)] {
        let graph = random_digraph(n, 0.15, 100, n as u64);
        let expect = fw_reference(&graph);
        assert_eq!(fw_seq(&graph, base), expect, "seq n={n} base={base}");
        assert_eq!(fw_po(&graph, base), expect, "po n={n} base={base}");
        for p in [1usize, 2, 3, 4, 5, 7, 8] {
            let session = fw_session(p, base);
            assert_eq!(
                session.run(Apsp { adj: graph.clone() }),
                expect,
                "paco n={n} base={base} p={p}"
            );
        }
    }
}

#[test]
fn all_variants_agree_on_boolean_adjacency() {
    for &n in &[17usize, 64, 130] {
        let adj = random_adjacency(n, 0.06, 3 * n as u64);
        let expect = fw_reference(&adj);
        assert_eq!(fw_seq(&adj, 16), expect, "seq n={n}");
        assert_eq!(fw_po(&adj, 16), expect, "po n={n}");
        for p in [2usize, 5, 11] {
            let session = Session::new(p);
            assert_eq!(
                session.run(Closure { adj: adj.clone() }),
                expect,
                "paco n={n} p={p}"
            );
        }
    }
}

#[test]
fn prime_processor_counts_are_first_class() {
    // The paper's headline claim: the partitioning balances on any p.
    let graph = random_digraph(128, 0.2, 60, 1234);
    let expect = fw_reference(&graph);
    for p in [3usize, 5, 7, 11, 13] {
        let session = Session::new(p);
        assert_eq!(session.run(Apsp { adj: graph.clone() }), expect, "p={p}");
    }
}

#[test]
fn traced_replays_reproduce_native_results_exactly() {
    let params = CacheParams::new(1024, 8);
    let graph = random_digraph(100, 0.2, 50, 77);
    let (seq_traced, q1_sim) = fw_seq_traced(&graph, 16, params);
    assert_eq!(seq_traced, fw_seq(&graph, 16));
    assert!(q1_sim.q_sum() > 0);
    for p in [2usize, 5] {
        let session = fw_session(p, 16);
        let (paco_traced, sim) = fw_paco_traced(&graph, p, 16, params);
        assert_eq!(
            paco_traced,
            session.run(Apsp { adj: graph.clone() }),
            "p={p}"
        );
        assert!(sim.q_sum() > 0, "p={p}");
    }
}

#[test]
fn paco_total_misses_stay_near_the_sequential_optimum() {
    // The PACO promise on this workload: Q^Σ_p stays within a small constant
    // factor of Q₁ (never anywhere near p·Q₁), and no single processor's
    // misses explode.
    let params = CacheParams::new(2048, 8);
    let graph = random_digraph(160, 0.15, 40, 5);
    let (_, seq_sim) = fw_seq_traced(&graph, 16, params);
    let q1 = seq_sim.q_sum() as f64;
    for p in [2usize, 4, 7] {
        let (_, sim) = fw_paco_traced(&graph, p, 16, params);
        let q_sum = sim.q_sum() as f64;
        assert!(
            q_sum < 3.0 * q1,
            "p={p}: Q_sum {q_sum} vs Q1 {q1} (p*Q1 = {})",
            p as f64 * q1
        );
        assert!(
            (sim.q_max() as f64) < 1.5 * q1,
            "p={p}: Q_max {} should be well below Q1 {q1}",
            sim.q_max()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn fw_variants_agree_on_random_digraphs(
        n in 1usize..90,
        p in 1usize..7,
        base in 1usize..40,
        density_milli in 0usize..400,
        seed in 0u64..1000,
    ) {
        let graph = random_digraph(n, density_milli as f64 / 1000.0, 64, seed);
        let expect = fw_reference(&graph);
        prop_assert_eq!(fw_seq(&graph, base), expect.clone());
        prop_assert_eq!(fw_po(&graph, base), expect.clone());
        let session = fw_session(p, base);
        prop_assert_eq!(session.run(Apsp { adj: graph }), expect);
    }

    #[test]
    fn fw_variants_agree_on_random_reachability(
        n in 1usize..90,
        p in 1usize..7,
        density_milli in 0usize..200,
        seed in 0u64..1000,
    ) {
        let adj = random_adjacency(n, density_milli as f64 / 1000.0, seed);
        let expect = fw_reference(&adj);
        prop_assert_eq!(fw_seq(&adj, 8), expect.clone());
        prop_assert_eq!(fw_po(&adj, 8), expect.clone());
        let session = fw_session(p, 8);
        prop_assert_eq!(session.run(Closure { adj }), expect);
    }
}
