//! Tests of the service plan cache: skeletons are cached per `(shape key,
//! processor count, tuning epoch)` and the cache must be invisible except in
//! the counters.
//!
//! * a property test that a cache-*hit* compile (skeleton reused, buffers
//!   re-bound) produces bit-identical output to a fresh cold-cache compile,
//!   for every request type the service exposes;
//! * counter arithmetic: `n` same-shaped runs cost exactly one miss and
//!   `n - 1` hits, and [`Session::update_tuning`] bumps the epoch so the
//!   next run recompiles — under the *new* knobs, still correctly;
//! * the engine's per-shard caches: a round-robin pair of shards each
//!   compiles a shared shape once, while [`Client::submit_batch`] routes a
//!   whole batch to one shard so the batch pays exactly one miss.

use paco_core::machine::HeteroSpec;
use paco_core::workload::{
    random_digraph, random_keys, random_matrix_wrapping, random_sequence, GapCosts, ParagraphWeight,
};
use paco_runtime::hetero::ThrottleSpec;
use paco_service::{
    Apsp, BatchPolicy, Engine, Gap, HeteroMatMul, Lcs, MatMul, OneD, Routing, Session, Solve, Sort,
    Strassen, Tuning,
};
use proptest::prelude::*;

/// A deterministic session (tuning pinned, independent of `PACO_BASE`).
fn session(p: usize) -> Session {
    Session::builder()
        .procs(p)
        .tuning(Tuning::default())
        .build()
}

/// Run `req()` twice through one session (the second run re-binds the
/// cached skeleton) and once through a cold session (fresh compile): all
/// three outputs must be bit-identical, and the warm session's counters
/// must show the reuse actually happened.
fn assert_cached_matches_fresh<R, O>(p: usize, req: impl Fn() -> R, ctx: &str)
where
    R: Solve<Output = O>,
    O: PartialEq + std::fmt::Debug,
{
    let warm = session(p);
    let cold_in_warm = warm.run(req());
    let via_hit = warm.run(req());
    let stats = warm.cache_stats();
    assert_eq!(stats.misses, 1, "{ctx}: first run must compile");
    assert_eq!(stats.hits, 1, "{ctx}: second run must reuse the skeleton");
    let fresh = session(p).run(req());
    assert!(
        via_hit == fresh,
        "{ctx}: cache-hit output diverged from a fresh compile"
    );
    assert!(cold_in_warm == fresh, "{ctx}: cold output diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// The tentpole invariant: for every request type, binding buffers to a
    /// *cached* skeleton computes exactly what compiling from scratch does.
    #[test]
    fn cache_hits_are_bit_identical_to_fresh_compiles_for_every_workload(
        p in 1usize..5,
        seed in 0u64..1000,
    ) {
        assert_cached_matches_fresh(p, || Lcs {
            a: random_sequence(60, 4, seed),
            b: random_sequence(45, 4, seed + 1),
        }, "lcs");
        assert_cached_matches_fresh(p, || Apsp {
            adj: random_digraph(14, 0.3, 25, seed),
        }, "apsp");
        assert_cached_matches_fresh(p, || MatMul {
            a: random_matrix_wrapping(24, 18, seed),
            b: random_matrix_wrapping(18, 20, seed + 1),
        }, "mm");
        assert_cached_matches_fresh(p, || HeteroMatMul {
            a: random_matrix_wrapping(24, 16, seed),
            b: random_matrix_wrapping(16, 20, seed + 1),
            throttle: ThrottleSpec::from_spec(&HeteroSpec::one_fast_socket(p, 1, 2.0)),
            aware: true,
        }, "hetero-mm");
        assert_cached_matches_fresh(p, || Strassen {
            a: random_matrix_wrapping(32, 32, seed),
            b: random_matrix_wrapping(32, 32, seed + 1),
        }, "strassen");
        assert_cached_matches_fresh(p, || Sort {
            keys: random_keys(120, seed),
        }, "sort");
        assert_cached_matches_fresh(p, || OneD {
            n: 80,
            weight: ParagraphWeight { ideal: 6.0 },
            d0: 0.0,
        }, "one-d");
        assert_cached_matches_fresh(p, || Gap {
            n: 24,
            costs: GapCosts::default(),
        }, "gap");
    }

    /// `n` same-shaped runs plan once: exactly one miss, `n - 1` hits.
    #[test]
    fn n_same_shaped_runs_cost_one_miss_and_n_minus_one_hits(
        n in 2usize..8,
        p in 1usize..5,
        seed in 0u64..1000,
    ) {
        let session = session(p);
        // Same shape, different contents — the cache must key on shape
        // alone and still answer each request from its own buffers.
        let expected: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut keys = random_keys(90, seed + i as u64);
                keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
                keys
            })
            .collect();
        for (i, want) in expected.iter().enumerate() {
            let got = session.run(Sort { keys: random_keys(90, seed + i as u64) });
            prop_assert_eq!(&got, want);
        }
        let stats = session.cache_stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, (n - 1) as u64);
        prop_assert_eq!(stats.entries, 1);
    }
}

/// A tuning change must invalidate: the epoch is part of the cache key, so
/// the next same-shaped run recompiles under the new knobs — and is still
/// correct.
#[test]
fn update_tuning_invalidates_cached_skeletons() {
    let mut session = session(3);
    let req = || Apsp {
        adj: random_digraph(12, 0.35, 25, 7),
    };
    let reference = session.run(req());
    assert_eq!(session.run(req()), reference);
    let stats = session.cache_stats();
    assert_eq!((stats.misses, stats.hits), (1, 1));

    session.update_tuning(|t| t.fw_base = 4);
    // Recompiled (miss count grows), same answer under the new base.
    assert_eq!(session.run(req()), reference);
    assert_eq!(session.run(req()), reference);
    let stats = session.cache_stats();
    assert_eq!((stats.misses, stats.hits), (2, 2));
}

/// Round-robin shards keep independent caches: two shards each compile the
/// shared shape exactly once.
#[test]
fn engine_shards_cache_independently() {
    let engine = Engine::builder()
        .procs(2)
        .tuning(Tuning::default())
        .policy(BatchPolicy {
            shards: 2,
            routing: Routing::RoundRobin,
            ..BatchPolicy::default()
        })
        .build();
    let client = engine.client();
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            client.submit(Lcs {
                a: random_sequence(40, 4, i),
                b: random_sequence(30, 4, i + 100),
            })
        })
        .collect();
    for t in tickets {
        t.wait().expect("engine run succeeds");
    }
    let stats = engine.stats();
    // Four same-shaped submissions alternate across two shards: each shard
    // compiles once and re-binds once.
    for shard in &stats.shards {
        assert_eq!(shard.plan_cache.misses, 1);
        assert_eq!(shard.plan_cache.hits, 1);
    }
    let merged = stats.plan_cache();
    assert_eq!((merged.misses, merged.hits), (2, 2));
    engine.shutdown();
}

/// `Client::submit_batch` routes the whole batch to one shard, so the batch
/// compiles its shape exactly once — and every ticket still gets its own
/// answer.
#[test]
fn submit_batch_shares_one_shard_and_one_skeleton() {
    let engine = Engine::builder()
        .procs(2)
        .tuning(Tuning::default())
        .policy(BatchPolicy {
            shards: 2,
            routing: Routing::RoundRobin,
            ..BatchPolicy::default()
        })
        .build();
    let client = engine.client();

    let reqs: Vec<Lcs> = (0..4)
        .map(|i| Lcs {
            a: random_sequence(40, 4, 500 + i),
            b: random_sequence(30, 4, 600 + i),
        })
        .collect();
    let oracle = session(2);
    let expected: Vec<u32> = reqs.iter().cloned().map(|r| oracle.run(r)).collect();

    let tickets = client.submit_batch(reqs);
    let got: Vec<u32> = tickets
        .into_iter()
        .map(|t| t.wait().expect("engine run succeeds"))
        .collect();
    assert_eq!(got, expected);

    let merged = engine.stats().plan_cache();
    assert_eq!(
        (merged.misses, merged.hits),
        (1, 3),
        "a batch routed to one shard compiles its shape once"
    );
    engine.shutdown();
}
