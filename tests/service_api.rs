//! Tests of the service front door (`paco_service`): the `Session`'s three
//! verbs must be interchangeable ways of computing the same answers.
//!
//! * property tests that `Session::run_batch` and `submit`+`flush` are
//!   bit-identical to per-request `Session::run` for every workload —
//!   including the MM and sort batch paths that only exist through the
//!   service layer — and for a heterogeneous mixed-type batch;
//! * a barrier-count regression: a batch of `k` equal Floyd–Warshall
//!   instances costs max-of-waves (= one instance's waves), not `k×` waves,
//!   measured through the session's scheduling stats.

use paco_core::workload::{
    random_digraph, random_keys, random_matrix_wrapping, random_sequence, GapCosts, ParagraphWeight,
};
use paco_graph::plan_fw;
use paco_service::{Apsp, Gap, Lcs, MatMul, OneD, Session, Sort, Strassen, TicketError, Tuning};
use proptest::prelude::*;

/// A deterministic session (tuning pinned, independent of `PACO_BASE`).
fn session(p: usize) -> Session {
    Session::builder()
        .procs(p)
        .tuning(Tuning::default())
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn lcs_batch_and_flush_match_individual_runs(
        count in 1usize..5,
        p in 1usize..6,
        seed in 0u64..1000,
    ) {
        let session = session(p);
        let reqs: Vec<Lcs> = (0..count)
            .map(|i| Lcs {
                a: random_sequence(20 + 31 * i, 4, seed + i as u64),
                b: random_sequence(35 + 17 * i, 4, seed + 100 + i as u64),
            })
            .collect();
        let individually: Vec<u32> = reqs.iter().cloned().map(|r| session.run(r)).collect();
        prop_assert_eq!(session.run_batch(reqs.iter().cloned()), individually.clone());
        let tickets: Vec<_> = reqs.into_iter().map(|r| session.submit(r)).collect();
        prop_assert_eq!(session.flush(), count);
        let flushed: Vec<u32> = tickets.iter().map(|t| t.take()).collect();
        prop_assert_eq!(flushed, individually);
    }

    #[test]
    fn fw_batch_and_flush_match_individual_runs(
        count in 1usize..5,
        p in 1usize..6,
        seed in 0u64..1000,
    ) {
        let session = session(p);
        let reqs: Vec<Apsp> = (0..count)
            .map(|i| Apsp { adj: random_digraph(6 + 11 * i, 0.3, 25, seed + i as u64) })
            .collect();
        let individually: Vec<_> = reqs.iter().cloned().map(|r| session.run(r)).collect();
        prop_assert_eq!(session.run_batch(reqs.iter().cloned()), individually.clone());
        let tickets: Vec<_> = reqs.into_iter().map(|r| session.submit(r)).collect();
        prop_assert_eq!(session.flush(), count);
        for (t, expect) in tickets.iter().zip(&individually) {
            prop_assert_eq!(&t.take(), expect);
        }
    }

    #[test]
    fn mm_and_strassen_batches_match_individual_runs(
        count in 1usize..4,
        p in 1usize..6,
        seed in 0u64..1000,
    ) {
        // The new batched MM path: exact wrapping arithmetic, so batching may
        // not change a single bit.
        let session = session(p);
        let mms: Vec<MatMul<_>> = (0..count)
            .map(|i| MatMul {
                a: random_matrix_wrapping(10 + 17 * i, 8 + 5 * i, seed + i as u64),
                b: random_matrix_wrapping(8 + 5 * i, 12 + 9 * i, seed + 50 + i as u64),
            })
            .collect();
        let individually: Vec<_> = mms.iter().cloned().map(|r| session.run(r)).collect();
        prop_assert_eq!(session.run_batch(mms.clone()), individually);

        // A small Strassen grain so the batch exercises the parallel 7-ary
        // tree, not just the sequential fallback.
        let strassen_session = Session::builder()
            .procs(p)
            .tuning(Tuning {
                strassen_cutoff: 16,
                strassen_parallel_base: 32,
                ..Tuning::default()
            })
            .build();
        let strassens: Vec<Strassen<_>> = (0..count)
            .map(|i| Strassen {
                a: random_matrix_wrapping(32 * (i + 1), 32 * (i + 1), seed + i as u64),
                b: random_matrix_wrapping(32 * (i + 1), 32 * (i + 1), seed + 70 + i as u64),
            })
            .collect();
        let individually: Vec<_> = strassens
            .iter()
            .cloned()
            .map(|r| strassen_session.run(r))
            .collect();
        prop_assert_eq!(strassen_session.run_batch(strassens), individually);
    }

    #[test]
    fn sort_batches_match_individual_runs(
        count in 1usize..5,
        p in 2usize..6,
        seed in 0u64..1000,
    ) {
        // The new batched sort path.  Mixed sizes cross the small-sort cutoff
        // in both directions; a low oversampling ratio keeps pivot selection
        // deterministic per instance (it depends only on the input), so batch
        // and individual runs see identical pivots.
        let session = Session::builder()
            .procs(p)
            .tuning(Tuning { sort_oversampling: Some(4), ..Tuning::default() })
            .build();
        let reqs: Vec<Sort<f64>> = (0..count)
            .map(|i| Sort { keys: random_keys(200 + 9000 * i + (1 << 14) * (i % 2), seed + i as u64) })
            .collect();
        let individually: Vec<_> = reqs.iter().cloned().map(|r| session.run(r)).collect();
        prop_assert_eq!(session.run_batch(reqs.iter().cloned()), individually.clone());
        let tickets: Vec<_> = reqs.into_iter().map(|r| session.submit(r)).collect();
        prop_assert_eq!(session.flush(), count);
        for (t, expect) in tickets.iter().zip(&individually) {
            prop_assert_eq!(&t.take(), expect);
        }
    }

    #[test]
    fn one_d_and_gap_batches_match_individual_runs(
        count in 1usize..4,
        p in 1usize..6,
        scale in 1u32..30,
    ) {
        let session = session(p);
        let oneds: Vec<_> = (0..count)
            .map(|i| OneD {
                n: 40 + 60 * i,
                weight: ParagraphWeight { ideal: scale as f64 },
                d0: 0.0,
            })
            .collect();
        let individually: Vec<_> = oneds.iter().cloned().map(|r| session.run(r)).collect();
        prop_assert_eq!(session.run_batch(oneds), individually);

        let gaps: Vec<_> = (0..count)
            .map(|i| Gap { n: 10 + 15 * i, costs: GapCosts::default() })
            .collect();
        let individually: Vec<_> = gaps.iter().cloned().map(|r| session.run(r)).collect();
        prop_assert_eq!(session.run_batch(gaps), individually);
    }

    #[test]
    fn mixed_type_flush_matches_individual_runs(
        p in 1usize..6,
        seed in 0u64..1000,
    ) {
        // The heterogeneous front-end: one submission per workload type, one
        // flush, every ticket bit-identical to its per-request run.
        let session = session(p);

        let lcs = Lcs {
            a: random_sequence(120, 4, seed),
            b: random_sequence(90, 4, seed + 1),
        };
        let apsp = Apsp { adj: random_digraph(40, 0.25, 30, seed + 2) };
        let mm = MatMul {
            a: random_matrix_wrapping(24, 18, seed + 3),
            b: random_matrix_wrapping(18, 30, seed + 4),
        };
        let sort = Sort { keys: random_keys(25_000, seed + 5) };
        let oned = OneD { n: 150, weight: ParagraphWeight { ideal: 7.0 }, d0: 0.0 };
        let gap = Gap { n: 30, costs: GapCosts::default() };

        let expect_lcs = session.run(lcs.clone());
        let expect_apsp = session.run(apsp.clone());
        let expect_mm = session.run(mm.clone());
        let expect_sort = session.run(sort.clone());
        let expect_oned = session.run(oned.clone());
        let expect_gap = session.run(gap.clone());

        let t_lcs = session.submit(lcs);
        let t_apsp = session.submit(apsp);
        let t_mm = session.submit(mm);
        let t_sort = session.submit(sort);
        let t_oned = session.submit(oned);
        let t_gap = session.submit(gap);
        prop_assert_eq!(session.pending(), 6);
        prop_assert_eq!(session.flush(), 6);
        prop_assert_eq!(session.pending(), 0);

        prop_assert_eq!(t_lcs.take(), expect_lcs);
        prop_assert_eq!(t_apsp.take(), expect_apsp);
        prop_assert_eq!(t_mm.take(), expect_mm);
        prop_assert_eq!(t_sort.take(), expect_sort);
        prop_assert_eq!(t_oned.take(), expect_oned);
        prop_assert_eq!(t_gap.take(), expect_gap);
    }
}

#[test]
fn fw_batch_costs_max_of_waves_not_sum() {
    // The barrier regression the batching exists for: k equal instances
    // through one run_batch must execute exactly one instance's waves, not k
    // times as many.
    let p = 4;
    let n = 64;
    let k = 6;
    let session = session(p);
    let per_instance = plan_fw(n, p, session.tuning().fw_base).plan.barriers() as u64;
    assert!(per_instance >= 1);

    let graphs: Vec<_> = (0..k)
        .map(|i| random_digraph(n, 0.25, 40, 900 + i as u64))
        .collect();
    let expect: Vec<_> = graphs
        .iter()
        .map(|g| session.run(Apsp { adj: g.clone() }))
        .collect();

    let got = session.run_batch(graphs.iter().map(|g| Apsp { adj: g.clone() }));
    assert_eq!(got, expect);
    let stats = session.last_stats();
    assert_eq!(stats.requests, k as u64);
    assert_eq!(
        stats.plan_waves, per_instance,
        "a batch of equal instances must cost max-of-waves"
    );
    assert!(
        stats.plan_waves < k as u64 * per_instance,
        "batching must beat running the {k} instances back to back"
    );
    assert_eq!(
        stats.pool_barriers, stats.plan_waves,
        "exactly one pool barrier per merged wave"
    );
}

#[test]
fn flush_on_empty_queue_is_a_no_op() {
    let session = session(2);
    assert_eq!(session.pending(), 0);
    assert_eq!(session.flush(), 0);
}

#[test]
fn tickets_resolve_only_after_flush() {
    let session = session(2);
    let ticket = session.submit(Lcs {
        a: vec![1, 2, 3, 4],
        b: vec![2, 4],
    });
    assert!(!ticket.ready());
    assert_eq!(ticket.try_wait(), Err(TicketError::Pending));
    assert_eq!(session.flush(), 1);
    assert!(ticket.ready());
    assert_eq!(ticket.take(), 2);
    // Taking twice is an explicit error, not a panic or a silent None.
    assert_eq!(ticket.try_wait(), Err(TicketError::Taken));
}
