//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in the sibling `*.rs` files, each registered as an
//! integration-test target in `Cargo.toml`.

/// Assert that two `f64` slices agree element-wise within `tol`.
pub fn assert_slices_close(a: &[f64], b: &[f64], tol: f64, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "{ctx}: element {i} differs: {x} vs {y}"
        );
    }
}

/// A handful of processor counts worth exercising everywhere: 1, a power of
/// two, a prime, and a "weird" composite.
pub fn interesting_processor_counts() -> Vec<usize> {
    vec![1, 2, 3, 5, 6, 7, 8]
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_behave() {
        super::assert_slices_close(&[1.0, 2.0], &[1.0, 2.0 + 1e-12], 1e-9, "demo");
        assert!(super::interesting_processor_counts().contains(&7));
    }
}
