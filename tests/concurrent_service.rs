//! Tests of the concurrent ingress (`paco_service::Engine`/`Client`): the
//! engine must be nothing more than a thread-safe, coalescing way of
//! computing exactly what a serial `Session::run` computes.
//!
//! * a multi-producer stress test: ≥4 threads submitting a heterogeneous
//!   `Lcs`/`Apsp`/`MatMul`/`Sort`/`Gap` mix while passes are in flight,
//!   every ticket bit-identical to the serial run, and the ingress counters
//!   proving that coalescing actually happened (executor passes strictly
//!   below submitted requests);
//! * a proptest that `BatchPolicy { max_batch: 1 }` degenerates to exactly
//!   one pass per request;
//! * poisoned-pass hardening: a panicking pass poisons exactly its own
//!   tickets and the engine keeps serving;
//! * shutdown semantics: a shutdown drains everything already queued (the
//!   gathering window is cut short, not the work), and clients outliving the
//!   engine get `Rejected`, not a hang.

use paco_core::matrix::Matrix;
use paco_core::metrics::sched::ingress;
use paco_core::semiring::{MinPlus, WrappingRing};
use paco_core::workload::{random_digraph, random_keys, random_matrix_wrapping, random_sequence};
use paco_service::{
    Apsp, BatchPolicy, Engine, Gap, Lcs, MatMul, Routing, Session, Sort, Ticket, TicketError,
    Tuning,
};
use proptest::prelude::*;
use std::time::Duration;

/// One producer's slice of the workload: a deterministic heterogeneous mix
/// keyed off `(producer, round)` so the serial oracle builds the exact same
/// requests.
#[derive(Clone)]
struct Mix {
    lcs: Lcs,
    apsp: Apsp,
    mm: MatMul<WrappingRing>,
    sort: Sort<f64>,
    gap: Gap<paco_core::workload::GapCosts>,
}

fn mix(producer: u64, round: u64) -> Mix {
    let seed = 1000 * producer + 10 * round;
    Mix {
        lcs: Lcs {
            a: random_sequence(60 + 7 * round as usize, 4, seed),
            b: random_sequence(45 + 11 * round as usize, 4, seed + 1),
        },
        apsp: Apsp {
            adj: random_digraph(24 + 4 * round as usize, 0.3, 30, seed + 2),
        },
        mm: MatMul {
            a: random_matrix_wrapping(18 + 2 * round as usize, 14, seed + 3),
            b: random_matrix_wrapping(14, 20 + 3 * round as usize, seed + 4),
        },
        sort: Sort {
            keys: random_keys(1500 + 800 * round as usize, seed + 5),
        },
        gap: Gap {
            n: 16 + 4 * round as usize,
            costs: paco_core::workload::GapCosts::default(),
        },
    }
}

/// The serial oracle's answers for one mix.
struct Expected {
    lcs: u32,
    apsp: Matrix<MinPlus>,
    mm: Matrix<WrappingRing>,
    sort: Vec<f64>,
    gap: Vec<f64>,
}

fn expected(session: &Session, m: &Mix) -> Expected {
    Expected {
        lcs: session.run(m.lcs.clone()),
        apsp: session.run(m.apsp.clone()),
        mm: session.run(m.mm.clone()),
        sort: session.run(m.sort.clone()),
        gap: session.run(m.gap.clone()),
    }
}

/// The tickets for one submitted mix.
struct Submitted {
    lcs: Ticket<u32>,
    apsp: Ticket<Matrix<MinPlus>>,
    mm: Ticket<Matrix<WrappingRing>>,
    sort: Ticket<Vec<f64>>,
    gap: Ticket<Vec<f64>>,
}

#[test]
fn concurrent_producers_match_serial_session_bit_for_bit() {
    const PRODUCERS: u64 = 4;
    const ROUNDS: u64 = 2;
    const REQUESTS: u64 = PRODUCERS * ROUNDS * 5;

    let p = 3;
    let tuning = Tuning::default();
    // The global ingress baseline is read before the engine exists, so every
    // pass the delta sees is backed by an enqueue the delta also sees.
    let ingress_before = ingress::snapshot();

    // Serial oracle: same p, same tuning, no concurrency anywhere.
    let serial = Session::builder().procs(p).tuning(tuning.clone()).build();
    let oracle: Vec<Vec<Expected>> = (0..PRODUCERS)
        .map(|producer| {
            (0..ROUNDS)
                .map(|round| expected(&serial, &mix(producer, round)))
                .collect()
        })
        .collect();

    // A generous gathering window so the burst of submissions coalesces;
    // two shards so routing is exercised, not just one queue.
    let engine = Engine::builder()
        .procs(p)
        .tuning(tuning)
        .policy(BatchPolicy {
            max_batch: 32,
            max_wait: Duration::from_millis(200),
            shards: 2,
            routing: Routing::RoundRobin,
            ..BatchPolicy::default()
        })
        .build();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|producer| {
                let client = engine.client();
                let oracle = &oracle;
                scope.spawn(move || {
                    // Submit the whole mix first (so requests pile into the
                    // gathering windows), then wait — the waits block on the
                    // ticket condvar while executor passes run elsewhere.
                    let submitted: Vec<Submitted> = (0..ROUNDS)
                        .map(|round| {
                            let m = mix(producer, round);
                            Submitted {
                                lcs: client.submit(m.lcs),
                                apsp: client.submit(m.apsp),
                                mm: client.submit(m.mm),
                                sort: client.submit(m.sort),
                                gap: client.submit(m.gap),
                            }
                        })
                        .collect();
                    for (round, tickets) in submitted.into_iter().enumerate() {
                        let expect = &oracle[producer as usize][round];
                        assert_eq!(tickets.lcs.wait().unwrap(), expect.lcs, "lcs");
                        assert_eq!(tickets.apsp.wait().unwrap(), expect.apsp, "apsp");
                        assert_eq!(tickets.mm.wait().unwrap(), expect.mm, "mm");
                        // f64 outputs must be *bit*-identical, not approximately
                        // equal: the engine runs the same deterministic steps.
                        assert_eq!(tickets.sort.wait().unwrap(), expect.sort, "sort");
                        assert_eq!(tickets.gap.wait().unwrap(), expect.gap, "gap");
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    });

    // Every request was accepted and executed, and coalescing happened: the
    // executors ran strictly fewer passes than requests were submitted.
    let stats = engine.stats();
    assert_eq!(stats.enqueued, REQUESTS);
    assert_eq!(stats.executed(), REQUESTS);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.poisoned, 0);
    assert!(
        stats.passes() < REQUESTS,
        "coalescing must merge requests into shared passes: {} passes for {REQUESTS} requests",
        stats.passes()
    );
    assert!(stats.coalesce_ratio() > 1.0);
    // Both shards saw work (round-robin over 40 requests cannot starve one).
    assert_eq!(stats.shards.len(), 2);
    assert!(stats.shards.iter().all(|s| s.requests > 0));
    assert!(stats.shards.iter().all(|s| s.queued == 0));

    // The process-wide ingress counters tell the same story.  Concurrent
    // engines in sibling tests may add to the delta, but every source
    // preserves passes <= enqueued, so strictness survives aggregation.
    let delta = ingress::snapshot().since(&ingress_before);
    assert!(delta.enqueued >= REQUESTS);
    assert!(
        delta.passes < delta.enqueued,
        "sched::ingress must prove coalescing: {} passes, {} enqueued",
        delta.passes,
        delta.enqueued
    );
    assert!(delta.max_pass > 1);

    engine.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// `max_batch: 1` disables coalescing: every request is its own pass,
    /// and the outputs still match the serial session exactly.
    #[test]
    fn max_batch_one_degenerates_to_per_request_runs(
        count in 1usize..8,
        p in 1usize..4,
        seed in 0u64..1000,
    ) {
        let tuning = Tuning::default();
        let serial = Session::builder().procs(p).tuning(tuning.clone()).build();
        let engine = Engine::builder()
            .procs(p)
            .tuning(tuning)
            .policy(BatchPolicy {
                max_batch: 1,
                // A non-zero window that max_batch renders irrelevant: the
                // batch is "full" after a single request.
                max_wait: Duration::from_millis(50),
                shards: 1,
                routing: Routing::RoundRobin,
                ..BatchPolicy::default()
            })
            .build();
        let client = engine.client();

        let reqs: Vec<Lcs> = (0..count)
            .map(|i| Lcs {
                a: random_sequence(20 + 13 * i, 4, seed + i as u64),
                b: random_sequence(30 + 7 * i, 4, seed + 100 + i as u64),
            })
            .collect();
        let expect: Vec<u32> = reqs.iter().cloned().map(|r| serial.run(r)).collect();
        let tickets: Vec<_> = reqs.into_iter().map(|r| client.submit(r)).collect();
        let got: Vec<u32> = tickets.iter().map(|t| t.wait().unwrap()).collect();
        prop_assert_eq!(got, expect);

        // Degenerate coalescing: exactly one pass per request.  The pass is
        // counted before its tickets resolve, so after every wait() returned
        // the tally is complete.
        let stats = engine.stats();
        prop_assert_eq!(stats.enqueued, count as u64);
        prop_assert_eq!(stats.passes(), count as u64);
        prop_assert_eq!(stats.executed(), count as u64);
        prop_assert!((stats.coalesce_ratio() - 1.0).abs() < f64::EPSILON);
        engine.shutdown();
    }

    /// Size-balanced routing computes the same answers as round-robin (it
    /// only changes *where* a request runs, never *what* it computes).
    #[test]
    fn size_balanced_routing_matches_serial(
        count in 1usize..6,
        seed in 0u64..1000,
    ) {
        let p = 2;
        let tuning = Tuning::default();
        let serial = Session::builder().procs(p).tuning(tuning.clone()).build();
        let engine = Engine::builder()
            .procs(p)
            .tuning(tuning)
            .policy(BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_millis(5),
                shards: 2,
                routing: Routing::SizeBalanced,
                ..BatchPolicy::default()
            })
            .build();
        let client = engine.client();

        // Wildly mixed sizes, the case size-balancing exists for.
        let reqs: Vec<Sort<f64>> = (0..count)
            .map(|i| Sort { keys: random_keys(if i % 2 == 0 { 200 } else { 20_000 }, seed + i as u64) })
            .collect();
        let expect: Vec<Vec<f64>> = reqs.iter().cloned().map(|r| serial.run(r)).collect();
        let tickets: Vec<_> = reqs.into_iter().map(|r| client.submit(r)).collect();
        for (t, e) in tickets.iter().zip(&expect) {
            prop_assert_eq!(&t.wait().unwrap(), e);
        }
        // Shutdown joins the executors, so the returned counters are final.
        let stats = engine.shutdown();
        prop_assert_eq!(stats.executed(), count as u64);
        // All outstanding work drained.
        prop_assert!(stats.shards.iter().all(|s| s.outstanding_steps == 0));
    }
}

/// A request whose single step panics, for exercising the engine's
/// poisoned-pass hardening.
mod exploding {
    use paco_core::tuning::Tuning;
    use paco_runtime::schedule::{Plan, Step};
    use paco_service::{Compiled, Prepared, ShapeKey, Skeleton, Solve};
    use std::any::Any;
    use std::sync::Arc;

    struct Exploding {
        skeleton: Arc<Plan<usize>>,
    }

    impl Prepared for Exploding {
        fn skeleton(&self) -> &Plan<usize> {
            &self.skeleton
        }
        fn run_step(&self, _proc: usize, _idx: usize) {
            panic!("exploding step");
        }
        fn take_output(&mut self) -> Box<dyn Any + Send> {
            Box::new(())
        }
    }

    pub struct ExplodingReq;

    impl Solve for ExplodingReq {
        type Output = ();
        fn shape_key(&self) -> ShapeKey {
            ShapeKey::new("test-exploding", std::iter::empty())
        }
        fn skeleton(&self, _tuning: &Tuning, p: usize) -> Skeleton {
            let plan = Plan::single_wave(
                p,
                vec![Step {
                    proc: 0,
                    job: 0usize,
                }],
            );
            Skeleton::new(Arc::new(()), &plan)
        }
        fn bind(
            self,
            skeleton: &Skeleton,
            _tuning: &Tuning,
            _p: usize,
            _arena: &Arc<paco_core::arena::ScratchArena>,
        ) -> Compiled<()> {
            Compiled::from_prepared(Box::new(Exploding {
                skeleton: Arc::clone(skeleton.index()),
            }))
        }
    }
}

#[test]
fn panicking_pass_poisons_its_tickets_and_the_engine_survives() {
    // One shard, a wide gathering window: the bad request and its innocent
    // neighbour (submitted back-to-back, far inside the window) share a
    // pass; both are poisoned; the engine keeps serving.
    let engine = Engine::builder()
        .procs(2)
        .tuning(Tuning::default())
        .policy(BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(300),
            shards: 1,
            routing: Routing::RoundRobin,
            ..BatchPolicy::default()
        })
        .build();
    let client = engine.client();

    let bad = client.submit(exploding::ExplodingReq);
    let neighbour = client.submit(Lcs {
        a: vec![1, 2, 3],
        b: vec![2, 3],
    });
    assert_eq!(bad.wait(), Err(TicketError::Poisoned));
    assert_eq!(neighbour.wait(), Err(TicketError::Poisoned));

    // The engine is still alive: a fresh submission (its own pass now)
    // resolves normally.
    let after = client.submit(Lcs {
        a: vec![7, 8],
        b: vec![8, 7],
    });
    assert_eq!(after.wait(), Ok(1));

    engine.shutdown();
}

#[test]
fn panicking_pass_with_max_batch_one_poisons_exactly_one_ticket() {
    // With coalescing disabled the blast radius of a panic is exactly one
    // request: the good submissions around the bad one all resolve.
    let engine = Engine::builder()
        .procs(2)
        .tuning(Tuning::default())
        .policy(BatchPolicy {
            max_batch: 1,
            max_wait: Duration::ZERO,
            shards: 1,
            routing: Routing::RoundRobin,
            ..BatchPolicy::default()
        })
        .build();
    let client = engine.client();

    let before = client.submit(Lcs {
        a: vec![1, 2],
        b: vec![2, 1],
    });
    let bad = client.submit(exploding::ExplodingReq);
    let after = client.submit(Lcs {
        a: vec![3, 4, 5],
        b: vec![3, 5],
    });

    assert_eq!(before.wait(), Ok(1));
    assert_eq!(bad.wait(), Err(TicketError::Poisoned));
    assert_eq!(after.wait(), Ok(2));

    // Executors are joined by shutdown, so the poison tally is final.
    let stats = engine.shutdown();
    assert_eq!(stats.enqueued, 3);
    assert_eq!(stats.poisoned, 1);
}

#[test]
fn shutdown_drains_queued_work_and_rejects_later_submissions() {
    // A gathering window far longer than the test: without the
    // shutdown-cuts-the-window rule these tickets would take 10s to resolve.
    let engine = Engine::builder()
        .procs(2)
        .tuning(Tuning::default())
        .policy(BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_secs(10),
            shards: 1,
            routing: Routing::RoundRobin,
            ..BatchPolicy::default()
        })
        .build();
    let client = engine.client();

    let tickets: Vec<_> = (0..4)
        .map(|i| {
            client.submit(Lcs {
                a: random_sequence(30, 4, i),
                b: random_sequence(25, 4, 100 + i),
            })
        })
        .collect();

    let started = std::time::Instant::now();
    engine.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(9),
        "shutdown must cut the gathering window short, not sit it out"
    );
    // Everything enqueued before the shutdown still executed.
    for t in &tickets {
        assert!(t.wait().is_ok());
    }

    // The client outlives the engine: loud rejection, no hang.
    let late = client.submit(Lcs {
        a: vec![1],
        b: vec![1],
    });
    assert_eq!(late.wait(), Err(TicketError::Rejected));
    assert_eq!(late.try_wait(), Err(TicketError::Rejected));
}

#[test]
fn tickets_are_single_take_across_wait_flavours() {
    let engine = Engine::new(2);
    let client = engine.client();
    let ticket = client.submit(Lcs {
        a: vec![1, 2, 3],
        b: vec![1, 3],
    });
    assert_eq!(ticket.wait(), Ok(2));
    assert_eq!(ticket.wait(), Err(TicketError::Taken));
    assert_eq!(ticket.try_wait(), Err(TicketError::Taken));
    engine.shutdown();
}
