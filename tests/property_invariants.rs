//! Property-based tests (proptest) of the core invariants:
//!
//! * every parallel variant of every algorithm agrees with its sequential
//!   reference on arbitrary inputs and arbitrary processor counts;
//! * processor-list splits always partition the list;
//! * the pruned-BFS partitioning conserves work and stays balanced;
//! * sorting variants produce a sorted permutation of their input;
//! * the closed-semiring laws hold for `MinPlus` / `MaxPlus` /
//!   `BoolSemiring` on randomly drawn elements (exactly — the tropical
//!   elements are integer-valued, so no floating-point slack is needed).

use paco_core::matrix::Matrix;
use paco_core::proc_list::ProcList;
use paco_core::semiring::{
    BoolSemiring, Bottleneck, CountMod, IdempotentSemiring, MaxPlus, MinPlus, Semiring, Viterbi,
    WrappingRing,
};
use paco_dp::lcs::{lcs_po, lcs_reference};
use paco_dp::one_d::kernel::FnWeight;
use paco_dp::one_d::one_d_reference;
use paco_matmul::mm_reference;
use paco_matmul::paco_mm::plan_paco_mm_with_base;
use paco_matmul::strassen::strassen_sequential_with_cutoff;
use paco_runtime::schedule::{Plan, Step};
use paco_service::{Lcs, MatMul, OneD, Session, Sort, Tuning};
use paco_sort::{po_sample_sort, seq_sample_sort};
use proptest::prelude::*;

/// Check every closed-semiring law on one drawn triple `(a, b, c)`.
fn check_semiring_laws<S: Semiring>(a: S, b: S, c: S) {
    // ⊕ is associative and commutative with identity `zero`.
    assert_eq!(a.add(b), b.add(a));
    assert_eq!(a.add(b).add(c), a.add(b.add(c)));
    assert_eq!(a.add(S::zero()), a);
    // ⊗ is associative with identity `one` and annihilator `zero`.
    assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
    assert_eq!(a.mul(S::one()), a);
    assert_eq!(S::one().mul(a), a);
    assert_eq!(a.mul(S::zero()), S::zero());
    assert_eq!(S::zero().mul(a), S::zero());
    // ⊗ distributes over ⊕ on both sides.
    assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    assert_eq!(b.add(c).mul(a), b.mul(a).add(c.mul(a)));
    // The fused form agrees with its definition.
    assert_eq!(a.mul_add(b, c), a.add(b.mul(c)));
}

/// Map a raw integer to a `MinPlus` element: mostly finite *integer-valued*
/// weights (so `⊗ = +` is exact in `f64`), occasionally the `+∞` zero.
fn min_plus_from(raw: i32) -> MinPlus {
    if raw % 13 == 0 {
        MinPlus::zero()
    } else {
        MinPlus(f64::from(raw % 10_000))
    }
}

/// Map a raw integer to a `MaxPlus` element (dually: occasionally `-∞`).
fn max_plus_from(raw: i32) -> MaxPlus {
    if raw % 13 == 0 {
        MaxPlus::zero()
    } else {
        MaxPlus(f64::from(raw % 10_000))
    }
}

/// Map a raw integer to a `Viterbi` likelihood: a dyadic fraction `k/64`
/// with `k ∈ [0, 64]`, so every product of drawn elements is exact in `f64`
/// (power-of-two denominators) and the `×`-associativity law can be checked
/// with `==`.
fn viterbi_from(raw: i32) -> Viterbi {
    Viterbi(f64::from(raw.rem_euclid(65)) / 64.0)
}

/// Map a raw integer to a `Bottleneck` capacity: ordinary finite values plus
/// both identities (`±∞`).  `(max, min)` only ever *selects* an operand, so
/// any `f64` is exact.
fn bottleneck_from(raw: i32) -> Bottleneck {
    match raw % 17 {
        0 => Bottleneck::zero(),
        1 => Bottleneck::one(),
        _ => Bottleneck(f64::from(raw % 1_000) / 4.0),
    }
}

/// Assert `⊕`-idempotency — the law the incremental-closure path (and FW
/// itself) rides on — for one drawn element of a marked semiring.
fn check_add_idempotent<S: IdempotentSemiring>(a: S) {
    assert_eq!(a.add(a), a);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn proc_list_splits_partition_the_ids(p in 1usize..200, a in 1usize..10, b in 1usize..10) {
        let list = ProcList::all(p);
        let (l, r) = list.split_ratio(a, b);
        let mut ids: Vec<_> = l.ids().chain(r.ids()).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..p).collect::<Vec<_>>());
    }

    #[test]
    fn lcs_parallel_variants_match_reference(
        n in 1usize..200,
        m in 1usize..200,
        p in 1usize..6,
        seed in 0u64..1000,
    ) {
        let a = paco_core::workload::random_sequence(n, 4, seed);
        let b = paco_core::workload::random_sequence(m, 4, seed.wrapping_add(1));
        let expect = lcs_reference(&a, &b);
        prop_assert_eq!(lcs_po(&a, &b, 64), expect);
        let session = Session::builder()
            .procs(p)
            .tuning(Tuning { lcs_base: 32, ..Tuning::default() })
            .build();
        prop_assert_eq!(session.run(Lcs { a, b }), expect);
    }

    #[test]
    fn one_d_paco_matches_reference(
        n in 1usize..300,
        p in 1usize..6,
        scale in 1u32..50,
    ) {
        let w = FnWeight(move |i: usize, j: usize| ((j - i) as f64 - scale as f64).powi(2));
        let expect = one_d_reference(n, &w, 0.0);
        let session = Session::builder()
            .procs(p)
            .tuning(Tuning { one_d_base: 16, ..Tuning::default() })
            .build();
        let got = session.run(OneD { n, weight: w, d0: 0.0 });
        for idx in 0..=n {
            prop_assert!((expect[idx] - got[idx]).abs() < 1e-9, "idx {}", idx);
        }
    }

    #[test]
    fn paco_mm_matches_reference_on_exact_ring(
        n in 1usize..60,
        m in 1usize..60,
        k in 1usize..60,
        p in 1usize..6,
        seed in 0u64..1000,
    ) {
        let a = paco_core::workload::random_matrix_wrapping(n, k, seed);
        let b = paco_core::workload::random_matrix_wrapping(k, m, seed.wrapping_add(7));
        let expect = mm_reference(&a, &b);
        let session = Session::new(p);
        prop_assert_eq!(session.run(MatMul { a, b }), expect);
    }

    #[test]
    fn strassen_is_exact_on_the_wrapping_ring(
        half in 1usize..40,
        seed in 0u64..1000,
    ) {
        let n = 2 * half;
        let a = paco_core::workload::random_matrix_wrapping(n, n, seed);
        let b = paco_core::workload::random_matrix_wrapping(n, n, seed.wrapping_add(3));
        prop_assert_eq!(
            strassen_sequential_with_cutoff(&a, &b, 8),
            mm_reference(&a, &b)
        );
    }

    #[test]
    fn mm_plan_conserves_volume_and_balances(
        n in 16usize..200,
        m in 16usize..200,
        k in 16usize..200,
        p in 1usize..33,
    ) {
        let base = 8;
        let plan = plan_paco_mm_with_base(n, m, k, p, base);
        let report = plan.report();
        let volume = (n * m * k) as f64;
        // Work is never lost, for any parameters.
        prop_assert!((report.total_work - volume).abs() / volume < 1e-9);
        // Balance is only promised inside the scaling range (p = o(problem)):
        // require a few divisible pieces per processor before judging it.
        let leaves_available = (n / base).max(1) * (m / base).max(1) * (k / base).max(1);
        if leaves_available >= 4 * p {
            prop_assert!(report.work_imbalance < 2.0 + 1e-9,
                "imbalance {} with n={} m={} k={} p={}", report.work_imbalance, n, m, k, p);
        }
    }

    #[test]
    fn sorts_produce_sorted_permutations(
        keys in proptest::collection::vec(any::<i32>(), 0..3000),
        p in 1usize..6,
    ) {
        let original: Vec<i64> = keys.iter().map(|&x| x as i64).collect();
        let mut expect = original.clone();
        expect.sort_unstable();

        let mut a = original.clone();
        seq_sample_sort(&mut a);
        prop_assert_eq!(&a, &expect);

        let mut b = original.clone();
        po_sample_sort(&mut b);
        prop_assert_eq!(&b, &expect);

        let session = Session::new(p);
        let c = session.run(Sort { keys: original });
        prop_assert_eq!(&c, &expect);
    }

    #[test]
    fn min_plus_semiring_laws_hold(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
        check_semiring_laws(min_plus_from(a), min_plus_from(b), min_plus_from(c));
    }

    #[test]
    fn max_plus_semiring_laws_hold(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
        check_semiring_laws(max_plus_from(a), max_plus_from(b), max_plus_from(c));
    }

    #[test]
    fn bool_semiring_laws_hold(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        check_semiring_laws(BoolSemiring(a), BoolSemiring(b), BoolSemiring(c));
    }

    #[test]
    fn wrapping_ring_semiring_laws_hold(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        check_semiring_laws(WrappingRing(a), WrappingRing(b), WrappingRing(c));
    }

    #[test]
    fn viterbi_semiring_laws_hold(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
        check_semiring_laws(viterbi_from(a), viterbi_from(b), viterbi_from(c));
        check_add_idempotent(viterbi_from(a));
    }

    #[test]
    fn bottleneck_semiring_laws_hold(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
        check_semiring_laws(bottleneck_from(a), bottleneck_from(b), bottleneck_from(c));
        check_add_idempotent(bottleneck_from(a));
    }

    #[test]
    fn count_mod_semiring_laws_hold(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        check_semiring_laws(
            CountMod::<97>::new(a),
            CountMod::<97>::new(b),
            CountMod::<97>::new(c),
        );
        check_semiring_laws(
            CountMod::<256>::new(a),
            CountMod::<256>::new(b),
            CountMod::<256>::new(c),
        );
    }

    #[test]
    fn semiring_matrix_identities_hold(
        n in 1usize..30,
        seed in 0u64..1000,
    ) {
        // (A * I) == A and A * 0 == 0 for the wrapping ring, through the PACO path.
        let a = paco_core::workload::random_matrix_wrapping(n, n, seed);
        let id: Matrix<WrappingRing> = Matrix::identity(n);
        let zero: Matrix<WrappingRing> = Matrix::zeros(n, n);
        let session = Session::new(3);
        prop_assert_eq!(session.run(MatMul { a: a.clone(), b: id }), a.clone());
        prop_assert_eq!(session.run(MatMul { a, b: zero.clone() }), zero);
    }
}

/// `CountMod` satisfies every *semiring* law (checked above) but is
/// deliberately **not** marked `IdempotentSemiring`: `a ⊕ a = 2a mod M ≠ a`
/// in general, so closure-style algorithms (and the incremental-closure
/// path) must not accept it.
#[test]
fn count_mod_is_not_add_idempotent() {
    let one = CountMod::<97>::one();
    assert_ne!(one.add(one), one);
}

/// Build one arbitrary wave-flattened plan from a SplitMix64 stream:
/// `p ∈ [1, 6]` processors, up to 5 waves of up to 8 steps each, every step
/// pinned to a random in-range processor with a random job payload.
fn arb_plan(state: &mut u64) -> Plan<u32> {
    let mut next = move || {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let p = (next() as usize % 6) + 1;
    let depth = next() as usize % 5;
    let waves = (0..depth)
        .map(|_| {
            let steps = next() as usize % 8;
            (0..steps)
                .map(|_| Step {
                    proc: next() as usize % p,
                    job: next() as u32,
                })
                .collect()
        })
        .collect();
    Plan::from_waves(p, waves)
}

/// Wave count plus, per processor, the FIFO order of
/// `(wave, plan-index, job)` assignments across all waves.
type ProcOrder = (usize, Vec<Vec<(usize, usize, u32)>>);

/// Flatten a batched plan into what the worker pool actually observes.
fn per_proc_order(plan: &Plan<(usize, u32)>) -> ProcOrder {
    let mut by_proc: Vec<Vec<(usize, usize, u32)>> = vec![Vec::new(); plan.p()];
    for (w, wave) in plan.waves().iter().enumerate() {
        for step in wave {
            by_proc[step.proc].push((w, step.job.0, step.job.1));
        }
    }
    (plan.waves().len(), by_proc)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// `Plan::batch` (owning) and `Plan::batch_refs` (borrowing) are the
    /// same merge: identical wave counts and identical per-processor step
    /// order for arbitrary mixes of plans with mismatched processor counts
    /// and depths.  The service layer relies on this when it batches cached
    /// (`Arc`ed, hence borrowed) skeletons alongside freshly built ones.
    #[test]
    fn batch_and_batch_refs_agree(seed in any::<u64>(), count in 0usize..6) {
        let mut state = seed;
        let plans: Vec<Plan<u32>> = (0..count).map(|_| arb_plan(&mut state)).collect();
        let refs: Vec<&Plan<u32>> = plans.iter().collect();
        let by_ref = Plan::batch_refs(&refs);
        let by_move = Plan::batch(plans);
        prop_assert_eq!(by_move.p(), by_ref.p());
        prop_assert_eq!(per_proc_order(&by_move), per_proc_order(&by_ref));
    }
}
