//! The paper's headline claim: PACO algorithms run — correctly and with
//! balanced partitions — on an *arbitrary* number of processors, including
//! primes, where classic PA algorithms either fail or waste cores.

use paco_core::util::{caps_usable_processors, is_caps_friendly, is_prime};
use paco_core::workload::{random_keys, random_matrix_wrapping, related_sequences, GapCosts};
use paco_dp::gap::gap_reference;
use paco_dp::lcs::{lcs_reference, plan_paco_lcs};
use paco_matmul::{mm_reference, plan_paco_mm};
use paco_service::{Gap, Lcs, MatMul, Session, Sort, Strassen, Tuning};

const PRIMES: &[usize] = &[2, 3, 5, 7, 11, 13];

#[test]
fn every_paco_algorithm_is_correct_on_prime_processor_counts() {
    let (a_seq, b_seq) = related_sequences(257, 4, 0.2, 1);
    let lcs_expect = lcs_reference(&a_seq, &b_seq);

    let a = random_matrix_wrapping(96, 64, 2);
    let b = random_matrix_wrapping(64, 80, 3);
    let mm_expect = mm_reference(&a, &b);

    let sa = random_matrix_wrapping(128, 128, 4);
    let sb = random_matrix_wrapping(128, 128, 5);
    let strassen_expect = mm_reference(&sa, &sb);

    let costs = GapCosts::default();
    let gap_expect = gap_reference(48, &costs);

    let keys = random_keys(40_000, 6);
    let mut sorted_expect = keys.clone();
    sorted_expect.sort_by(|x, y| x.partial_cmp(y).unwrap());

    for &p in PRIMES {
        assert!(is_prime(p as u64));
        // A small Strassen grain so the 7-ary tree is deep enough to give
        // every prime p a balanced share.
        let tuning = Tuning {
            strassen_cutoff: 16,
            strassen_parallel_base: 32,
            ..Tuning::default()
        };
        let session = Session::builder().procs(p).tuning(tuning).build();

        assert_eq!(
            session.run(Lcs {
                a: a_seq.clone(),
                b: b_seq.clone()
            }),
            lcs_expect,
            "LCS p={p}"
        );
        assert_eq!(
            session.run(MatMul {
                a: a.clone(),
                b: b.clone()
            }),
            mm_expect,
            "MM p={p}"
        );
        assert_eq!(
            session.run(Strassen {
                a: sa.clone(),
                b: sb.clone()
            }),
            strassen_expect,
            "Strassen p={p}"
        );
        let gap = session.run(Gap { n: 48, costs });
        for (x, y) in gap.iter().zip(gap_expect.iter()) {
            assert!((x - y).abs() < 1e-9, "GAP p={p}");
        }
        assert_eq!(
            session.run(Sort { keys: keys.clone() }),
            sorted_expect,
            "sort p={p}"
        );
    }
}

#[test]
fn partitions_stay_balanced_on_prime_processor_counts() {
    for &p in PRIMES {
        let mm_plan = plan_paco_mm(512, 512, 512, p);
        let report = mm_plan.report();
        assert!(
            report.work_imbalance < 1.3,
            "MM plan imbalance {} at p={p}",
            report.work_imbalance
        );
        assert!(report.geometric_decrease, "MM plan not geometric at p={p}");

        let lcs_plan = plan_paco_lcs(512, 512, p, 16);
        assert!(
            lcs_plan.imbalance() < 1.35,
            "LCS plan imbalance {} at p={p}",
            lcs_plan.imbalance()
        );
    }
}

#[test]
fn caps_style_strassen_wastes_processors_where_paco_does_not() {
    // On the paper's machines (24 and 72 cores) and on primes, a CAPS-style
    // algorithm cannot use every core; PACO's partitioning has no such gap.
    for &p in &[24usize, 72, 5, 11, 13] {
        let usable = caps_usable_processors(p);
        if is_caps_friendly(p) {
            assert_eq!(usable, p);
        } else {
            assert!(usable < p, "p={p} should lose processors under CAPS");
        }
        // Refine past the kernel base case so the tree has at least p leaves
        // even for p = 72 (the scaling range requires p = o(n)).
        let plan = paco_matmul::paco_mm::plan_paco_mm_with_base(256, 256, 256, p, 16);
        assert_eq!(
            plan.per_proc
                .iter()
                .filter(|nodes| !nodes.is_empty())
                .count(),
            p,
            "every one of the {p} processors receives work under PACO"
        );
    }
}
