//! Property-based tests of the incremental subsystem (`paco_incr` through
//! `paco_service`):
//!
//! * **bit-identity** — after an arbitrary sequence of edge-update batches
//!   (improving, worsening, deleting; arbitrary block sizes and fallback
//!   thresholds, including "always fall back" and "never fall back"), the
//!   maintained closure is `==`-identical to a from-scratch re-closure of
//!   the final adjacency, for all three idempotent semirings whose
//!   operations are exact (`MinPlus` over integer-valued weights,
//!   `BoolSemiring`, `Bottleneck`);
//! * **traceback** — every `LcsTrace` edit script replays its first
//!   sequence into the second exactly, and its `Keep` count equals the
//!   reference LCS length.
//!
//! Sizes are drawn from ranges straddling non-powers-of-two, so block
//! boundaries with ragged tails are always exercised.

use paco_core::matrix::Matrix;
use paco_core::semiring::{BoolSemiring, Bottleneck, MinPlus, Semiring};
use paco_core::workload::{random_adjacency, random_digraph, related_sequences};
use paco_graph::fw_reference;
use paco_service::{ClosedState, EdgeUpdate, IncClose, IncSnapshot, IncUpdate, LcsTrace, Session};
use proptest::prelude::*;
use std::sync::Arc;

/// Drive `state` through `updates` in batches of `batch` and assert the
/// maintained closure stays `==`-identical to `fw_reference` of a shadow
/// adjacency after **every** batch (not only at the end — intermediate
/// states are what an online caller observes).
fn check_batches<S: paco_core::semiring::IdempotentSemiring>(
    state: &mut ClosedState<S>,
    shadow: &mut Matrix<S>,
    updates: &[EdgeUpdate<S>],
    batch: usize,
    block: usize,
    fallback_percent: usize,
) {
    for chunk in updates.chunks(batch.max(1)) {
        for u in chunk {
            shadow[(u.from, u.to)] = u.weight;
        }
        state.apply_batch(chunk, block, fallback_percent, 16);
        assert_eq!(state.adjacency(), &*shadow, "adjacency drifted");
        assert_eq!(
            state.closed(),
            &fw_reference(shadow),
            "closure not bit-identical after a batch (block={block}, fallback={fallback_percent}%)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn min_plus_incremental_closure_is_bit_identical(
        n in 5usize..34,
        seed in 0u64..1000,
        raw in proptest::collection::vec((0usize..1000, 0usize..1000, 0u32..60), 1..10),
        batch in 1usize..4,
        block in 3usize..11,
        fp_idx in 0usize..3,
    ) {
        let fallback_percent = [0, 60, 100][fp_idx];
        let mut shadow = random_digraph(n, 0.12, 40, seed);
        let mut state = ClosedState::close(shadow.clone(), 16);
        let updates: Vec<EdgeUpdate<MinPlus>> = raw
            .iter()
            .map(|&(u, v, w)| {
                // w == 0 deletes the edge (+∞); small weights improve often,
                // large ones worsen — both paths stay exercised.
                let weight = if w == 0 { MinPlus::zero() } else { MinPlus(f64::from(w)) };
                EdgeUpdate::new(u % n, v % n, weight)
            })
            .collect();
        check_batches(&mut state, &mut shadow, &updates, batch, block, fallback_percent);
    }

    #[test]
    fn bool_incremental_closure_is_bit_identical(
        n in 5usize..30,
        seed in 0u64..1000,
        raw in proptest::collection::vec((0usize..1000, 0usize..1000, 0u32..4), 1..10),
        batch in 1usize..4,
        block in 3usize..9,
        fp_idx in 0usize..3,
    ) {
        let fallback_percent = [0, 60, 100][fp_idx];
        let mut shadow = random_adjacency(n, 0.08, seed);
        let mut state = ClosedState::close(shadow.clone(), 16);
        let updates: Vec<EdgeUpdate<BoolSemiring>> = raw
            .iter()
            .map(|&(u, v, w)| EdgeUpdate::new(u % n, v % n, BoolSemiring(w != 0)))
            .collect();
        check_batches(&mut state, &mut shadow, &updates, batch, block, fallback_percent);
    }

    #[test]
    fn bottleneck_incremental_closure_is_bit_identical(
        n in 5usize..30,
        seed in 0u64..1000,
        raw in proptest::collection::vec((0usize..1000, 0usize..1000, 0u32..40), 1..10),
        batch in 1usize..4,
        block in 3usize..9,
        fp_idx in 0usize..3,
    ) {
        let fallback_percent = [0, 60, 100][fp_idx];
        // Random capacities: diagonal ∞ (one), off-diagonal mostly -∞ (no
        // edge) with sparse finite capacities.
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(n as u64);
        let mut next = move || {
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut shadow = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                Bottleneck::one()
            } else if next() % 100 < 10 {
                Bottleneck((next() % 50) as f64)
            } else {
                Bottleneck::zero()
            }
        });
        let mut state = ClosedState::close(shadow.clone(), 16);
        let updates: Vec<EdgeUpdate<Bottleneck>> = raw
            .iter()
            .map(|&(u, v, w)| {
                // w == 0 severs the edge; otherwise a capacity that may
                // widen or narrow the existing one.
                let weight = if w == 0 { Bottleneck::zero() } else { Bottleneck(f64::from(w)) };
                EdgeUpdate::new(u % n, v % n, weight)
            })
            .collect();
        check_batches(&mut state, &mut shadow, &updates, batch, block, fallback_percent);
    }

    #[test]
    fn lcs_trace_scripts_replay_to_the_exact_lcs(
        n in 1usize..220,
        alphabet in 2u32..6,
        seed in 0u64..1000,
        mutation_pct in 0u32..70,
    ) {
        let (a, b) = related_sequences(n, alphabet, f64::from(mutation_pct) / 100.0, seed);
        let script = paco_dp::lcs::hirschberg(&a, &b);
        prop_assert_eq!(paco_dp::lcs::replay(&script, &a), b.clone());
        prop_assert_eq!(
            paco_dp::lcs::lcs_of_script(&script),
            paco_dp::lcs::lcs_reference(&a, &b)
        );
    }
}

/// The same bit-identity property driven through the service layer: typed
/// `IncClose`/`IncUpdate`/`IncSnapshot` requests against a `Session`, with
/// the update stream split across several submissions.
#[test]
fn service_level_update_stream_stays_exact() {
    let session = Session::new(2);
    let registry = session.registry();
    let mut shadow = random_digraph(29, 0.15, 30, 41);
    let handle = session.run(IncClose {
        adj: shadow.clone(),
        registry: Arc::clone(&registry),
    });

    let stream = [
        (3usize, 17usize, 1.0),
        (17, 28, 2.0),
        (28, 3, 900.0), // worsening: forces the full re-closure path
        (0, 11, 1.0),
        (11, 0, 1.0), // closes a 2-cycle through fresh edges
    ];
    for &(u, v, w) in &stream {
        shadow[(u, v)] = MinPlus(w);
        session.run(IncUpdate {
            handle,
            updates: vec![EdgeUpdate::new(u, v, MinPlus(w))],
            registry: Arc::clone(&registry),
        });
        let snapshot = session.run(IncSnapshot {
            handle,
            registry: Arc::clone(&registry),
        });
        assert_eq!(snapshot, fw_reference(&shadow));
    }
}

/// `LcsTrace` through the service layer, including the empty/degenerate
/// shapes the recursion bottoms out on.
#[test]
fn lcs_trace_request_handles_degenerate_shapes() {
    let session = Session::new(1);
    for (a, b) in [
        (vec![], vec![]),
        (vec![1, 2, 3], vec![]),
        (vec![], vec![4, 5]),
        (vec![7], vec![7]),
        (vec![1, 2, 3], vec![3, 2, 1]),
    ] {
        let script = session.run(LcsTrace {
            a: a.clone(),
            b: b.clone(),
        });
        assert_eq!(paco_dp::lcs::replay(&script, &a), b);
    }
}
