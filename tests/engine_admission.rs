//! Admission-control semantics of the concurrent [`Engine`]:
//!
//! * bounded-queue overload stress: many blocking producers against a
//!   capacity-bounded engine — the queue-depth watermark never exceeds the
//!   bound, nothing is refused, and every output is identical to a serial
//!   [`Session::run`] of the same request;
//! * deterministic fail-fast admission: with the executor held mid-pass,
//!   [`Client::try_submit`] accepts exactly `capacity` requests and then
//!   returns [`Overloaded`], while blocked [`Client::submit`] calls complete
//!   once the executor drains;
//! * a proptest of deadline/priority semantics: expired requests resolve
//!   [`TicketError::Expired`] and never a wrong answer, no live ticket is
//!   ever lost, and within any one pass a higher class never executes
//!   behind a strictly lower one;
//! * shutdown under backpressure: producers parked on a full queue resolve
//!   (drained or `Rejected`) when the engine shuts down — never a deadlock
//!   (watchdog-timed);
//! * policy validation: `capacity: Some(0)` is refused at engine build.

use paco_runtime::schedule::{Plan, Step};
use paco_service::{
    BatchPolicy, Compiled, Engine, Lcs, Overloaded, Prepared, Priority, Session, ShapeKey,
    Skeleton, Solve, Sort, SubmitOptions, TicketError,
};
use parking_lot::{Condvar, Mutex};
use proptest::prelude::*;
use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A latch a test holds an executor on: the gate request's single step
/// signals `started` and then parks until [`Gate::open`].  While the step is
/// parked the submitting shard's executor is mid-pass with an empty queue,
/// so subsequent submissions queue up deterministically.
struct Gate {
    open: Mutex<bool>,
    opened: Condvar,
    started: Mutex<bool>,
    started_cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            opened: Condvar::new(),
            started: Mutex::new(false),
            started_cv: Condvar::new(),
        })
    }

    /// Release the executor.
    fn open(&self) {
        *self.open.lock() = true;
        self.opened.notify_all();
    }

    /// Block until the gate request's pass has started executing.
    fn wait_started(&self) {
        let mut started = self.started.lock();
        while !*started {
            self.started_cv.wait(&mut started);
        }
    }

    fn step(&self) {
        {
            let mut started = self.started.lock();
            *started = true;
            self.started_cv.notify_all();
        }
        let mut open = self.open.lock();
        while !*open {
            self.opened.wait(&mut open);
        }
    }
}

/// The request driving a [`Gate`]: one step that parks its pool.
struct GateReq {
    gate: Arc<Gate>,
}

struct GateStep {
    gate: Arc<Gate>,
    skeleton: Arc<Plan<usize>>,
}

impl Prepared for GateStep {
    fn skeleton(&self) -> &Plan<usize> {
        &self.skeleton
    }
    fn run_step(&self, _proc: usize, _idx: usize) {
        self.gate.step();
    }
    fn take_output(&mut self) -> Box<dyn Any + Send> {
        Box::new(())
    }
}

impl Solve for GateReq {
    type Output = ();
    fn shape_key(&self) -> ShapeKey {
        ShapeKey::new("test-gate", std::iter::empty())
    }
    fn skeleton(&self, _tuning: &paco_service::Tuning, p: usize) -> Skeleton {
        let plan = Plan::single_wave(
            p,
            vec![Step {
                proc: 0,
                job: 0usize,
            }],
        );
        Skeleton::new(Arc::new(()), &plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        _tuning: &paco_service::Tuning,
        _p: usize,
        _arena: &Arc<paco_core::arena::ScratchArena>,
    ) -> Compiled<()> {
        Compiled::from_prepared(Box::new(GateStep {
            gate: self.gate,
            skeleton: Arc::clone(skeleton.index()),
        }))
    }
}

/// A single-step request that appends its id to a shared log when executed
/// and returns the id — lets tests reconstruct execution order.
struct LogReq {
    id: usize,
    log: Arc<Mutex<Vec<usize>>>,
}

struct LogStep {
    id: usize,
    log: Arc<Mutex<Vec<usize>>>,
    skeleton: Arc<Plan<usize>>,
}

impl Prepared for LogStep {
    fn skeleton(&self) -> &Plan<usize> {
        &self.skeleton
    }
    fn run_step(&self, _proc: usize, _idx: usize) {
        self.log.lock().push(self.id);
    }
    fn take_output(&mut self) -> Box<dyn Any + Send> {
        Box::new(self.id)
    }
}

impl Solve for LogReq {
    type Output = usize;
    fn shape_key(&self) -> ShapeKey {
        ShapeKey::new("test-log", std::iter::empty())
    }
    fn skeleton(&self, _tuning: &paco_service::Tuning, p: usize) -> Skeleton {
        let plan = Plan::single_wave(
            p,
            vec![Step {
                proc: 0,
                job: 0usize,
            }],
        );
        Skeleton::new(Arc::new(()), &plan)
    }
    fn bind(
        self,
        skeleton: &Skeleton,
        _tuning: &paco_service::Tuning,
        _p: usize,
        _arena: &Arc<paco_core::arena::ScratchArena>,
    ) -> Compiled<usize> {
        Compiled::from_prepared(Box::new(LogStep {
            id: self.id,
            log: self.log,
            skeleton: Arc::clone(skeleton.index()),
        }))
    }
}

/// A single-shard engine held by a fresh gate: the gate request is already
/// mid-pass (executor parked, queue empty) when this returns.
fn gated_engine(policy: BatchPolicy) -> (Engine, Arc<Gate>) {
    let engine = Engine::builder().procs(1).policy(policy).build();
    let gate = Gate::new();
    let _gate_ticket = engine.client().submit(GateReq {
        gate: Arc::clone(&gate),
    });
    gate.wait_started();
    (engine, gate)
}

/// Tentpole invariant under closed-loop overload: 4 producers × 25 blocking
/// submits against `capacity: Some(4)` — the watermark respects the bound,
/// nothing is shed on the blocking path, and every output matches a serial
/// `Session::run` of the same request bit for bit.
#[test]
fn blocking_submits_respect_capacity_and_match_serial_results() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 25;
    const CAPACITY: usize = 4;

    let engine = Engine::builder()
        .procs(1)
        .policy(BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            capacity: Some(CAPACITY),
            ..BatchPolicy::default()
        })
        .build();
    let serial = Session::new(1);

    let sort_keys = |t: usize, i: usize| -> Vec<f64> {
        (0..24)
            .map(|k| (((t * 31 + i * 7 + k * 13) % 101) as f64) - 50.0)
            .collect()
    };
    let lcs_seqs = |t: usize, i: usize| -> (Vec<u32>, Vec<u32>) {
        let a = (0..20).map(|k| ((t + i + k) % 5) as u32).collect();
        let b = (0..20).map(|k| ((t * 2 + k) % 5) as u32).collect();
        (a, b)
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|t| {
                let client = engine.client();
                let sort_keys = &sort_keys;
                let lcs_seqs = &lcs_seqs;
                scope.spawn(move || {
                    let mut outputs = Vec::new();
                    for i in 0..PER_PRODUCER {
                        if (t + i) % 2 == 0 {
                            let keys = sort_keys(t, i);
                            outputs.push((t, i, Ok(client.submit(Sort { keys }).wait())));
                        } else {
                            let (a, b) = lcs_seqs(t, i);
                            outputs.push((t, i, Err(client.submit(Lcs { a, b }).wait())));
                        }
                    }
                    outputs
                })
            })
            .collect();
        for handle in handles {
            for (t, i, out) in handle.join().expect("producer panicked") {
                match out {
                    Ok(sorted) => {
                        let expect = serial.run(Sort {
                            keys: sort_keys(t, i),
                        });
                        assert_eq!(sorted.expect("sort ticket resolves"), expect);
                    }
                    Err(len) => {
                        let (a, b) = lcs_seqs(t, i);
                        let expect = serial.run(Lcs { a, b });
                        assert_eq!(len.expect("lcs ticket resolves"), expect);
                    }
                }
            }
        }
    });

    let stats = engine.shutdown();
    let total = (PRODUCERS * PER_PRODUCER) as u64;
    assert_eq!(stats.enqueued, total);
    assert_eq!(stats.executed(), total);
    assert_eq!(stats.rejected, 0, "blocking submits are never shed");
    assert_eq!(stats.overloaded, 0, "no try_submit was used");
    assert!(
        stats.max_queue_depth() <= CAPACITY,
        "queue watermark {} exceeded the capacity bound {CAPACITY}",
        stats.max_queue_depth()
    );
    assert_eq!(stats.reject_ratio(), 0.0);
}

/// Deterministic admission boundary: with the executor held mid-pass,
/// `try_submit` accepts exactly `capacity` requests, the next one is
/// `Overloaded`, and producers blocked in `submit` backpressure complete
/// once the executor drains.
#[test]
fn try_submit_rejects_exactly_when_full_and_blocked_submits_drain() {
    const CAPACITY: usize = 3;
    let (engine, gate) = gated_engine(BatchPolicy {
        max_batch: 8,
        max_wait: Duration::ZERO,
        capacity: Some(CAPACITY),
        ..BatchPolicy::default()
    });
    let client = engine.client();
    let log = Arc::new(Mutex::new(Vec::new()));

    // Fill the queue to the brim...
    let queued: Vec<_> = (0..CAPACITY)
        .map(|id| {
            client
                .try_submit(LogReq {
                    id,
                    log: Arc::clone(&log),
                })
                .expect("queue below capacity")
        })
        .collect();
    // ...and the next fail-fast admission is refused with nothing queued.
    assert_eq!(
        client
            .try_submit(LogReq {
                id: 99,
                log: Arc::clone(&log),
            })
            .err(),
        Some(Overloaded)
    );

    // Blocking submits park in backpressure instead of failing.
    let entered = Arc::new(AtomicUsize::new(0));
    let blocked: Vec<_> = (0..2)
        .map(|i| {
            let client = client.clone();
            let log = Arc::clone(&log);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                let ticket = client.submit(LogReq { id: 100 + i, log });
                entered.fetch_add(1, Ordering::SeqCst);
                ticket.wait()
            })
        })
        .collect();
    // The queue is full, so neither blocked submit can have been admitted.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        entered.load(Ordering::SeqCst),
        0,
        "submit must backpressure"
    );

    gate.open();
    for ticket in queued {
        ticket.wait().expect("queued request executes");
    }
    for handle in blocked {
        let id = handle
            .join()
            .expect("blocked producer panicked")
            .expect("blocked submit completes after drain");
        assert!(id >= 100);
    }

    let stats = engine.shutdown();
    assert_eq!(stats.overloaded, 1, "exactly one admission was refused");
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.max_queue_depth(), CAPACITY);
    assert_eq!(stats.executed(), 1 + CAPACITY as u64 + 2);
    let executed = log.lock().clone();
    assert_eq!(executed.len(), CAPACITY + 2);
}

const LANES: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Deadline/priority semantics under a held executor: every request is
    /// queued before the gate opens, then drained in passes of exactly
    /// `max_batch` live requests.  Expired requests resolve `Expired` (never
    /// a wrong answer, never a pass slot), no live ticket is lost, classes
    /// never invert across passes, and FIFO order holds within a class.
    #[test]
    fn deadlines_expire_and_priorities_never_invert(
        shape in proptest::collection::vec((0usize..3, any::<bool>()), 1..12),
        max_batch in 2usize..5,
    ) {
        let (engine, gate) = gated_engine(BatchPolicy {
            max_batch,
            max_wait: Duration::ZERO,
            ..BatchPolicy::default()
        });
        let client = engine.client();
        let log = Arc::new(Mutex::new(Vec::new()));

        let tickets: Vec<_> = shape
            .iter()
            .enumerate()
            .map(|(id, &(lane, expired))| {
                let mut opts = SubmitOptions::new().priority(LANES[lane]);
                if expired {
                    // A deadline of "now": guaranteed in the past by the
                    // time the gated executor drains.
                    opts = opts.deadline(Instant::now());
                }
                client.submit_with(
                    LogReq { id, log: Arc::clone(&log) },
                    opts,
                )
            })
            .collect();
        gate.open();

        for (id, (ticket, &(_, expired))) in tickets.into_iter().zip(&shape).enumerate() {
            if expired {
                prop_assert_eq!(ticket.wait(), Err(TicketError::Expired));
            } else {
                prop_assert_eq!(ticket.wait(), Ok(id));
            }
        }
        let stats = engine.shutdown();
        let expired_count = shape.iter().filter(|&&(_, e)| e).count();
        let live_count = shape.len() - expired_count;
        prop_assert_eq!(stats.expired, expired_count as u64);
        // The gate request plus every live request executed; nothing more.
        prop_assert_eq!(stats.executed(), 1 + live_count as u64);

        // All requests were queued before the executor drained, so passes
        // take exactly `max_batch` live requests (expired ones don't count):
        // the log splits into per-pass chunks at multiples of `max_batch`.
        let executed = log.lock().clone();
        prop_assert_eq!(executed.len(), live_count);
        let chunks: Vec<&[usize]> = executed.chunks(max_batch).collect();
        for pair in chunks.windows(2) {
            let min_earlier = pair[0].iter().map(|&id| LANES[shape[id].0]).min().unwrap();
            let max_later = pair[1].iter().map(|&id| LANES[shape[id].0]).max().unwrap();
            prop_assert!(
                min_earlier >= max_later,
                "priority inversion across passes: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
        // FIFO within a class: same-priority live ids execute in submit order.
        for lane in LANES {
            let order: Vec<usize> = executed
                .iter()
                .copied()
                .filter(|&id| LANES[shape[id].0] == lane)
                .collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(order, sorted);
        }
    }
}

/// Regression: shutting down while producers are parked in backpressure
/// must resolve every one of them — drained or `Rejected` — never deadlock.
/// The whole scenario runs under a watchdog timeout.
#[test]
fn shutdown_under_backpressure_resolves_blocked_submits() {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let scenario = std::thread::spawn(move || {
        const CAPACITY: usize = 2;
        let (engine, gate) = gated_engine(BatchPolicy {
            max_batch: 2,
            max_wait: Duration::ZERO,
            capacity: Some(CAPACITY),
            ..BatchPolicy::default()
        });
        let client = engine.client();
        let log = Arc::new(Mutex::new(Vec::new()));

        // Fill the queue to capacity (these admissions don't block)...
        let queued: Vec<_> = (0..CAPACITY)
            .map(|id| {
                client.submit(LogReq {
                    id,
                    log: Arc::clone(&log),
                })
            })
            .collect();
        // ...then park three producers in backpressure.
        let blocked: Vec<_> = (0..3)
            .map(|i| {
                let client = client.clone();
                let log = Arc::clone(&log);
                std::thread::spawn(move || client.submit(LogReq { id: 10 + i, log }).wait())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));

        // Shut down while they are parked; open the gate a beat later so
        // the executor can run its final drain.
        let shutdown = std::thread::spawn(move || engine.shutdown());
        std::thread::sleep(Duration::from_millis(50));
        gate.open();

        // Every parked producer resolves: `Rejected` when shutdown won the
        // race, a normal completion if a drain admitted it first.
        for handle in blocked {
            match handle.join().expect("blocked producer panicked") {
                Ok(id) => assert!(id >= 10),
                Err(err) => assert_eq!(err, TicketError::Rejected),
            }
        }
        // Work admitted before shutdown still executed.
        for (id, ticket) in queued.into_iter().enumerate() {
            assert_eq!(ticket.wait(), Ok(id));
        }
        let stats = shutdown.join().expect("shutdown panicked");
        assert!(stats.max_queue_depth() <= CAPACITY);
        // Everything admitted (gate, pre-filled, and any producer that won
        // the race) executed; admission and execution balance exactly.
        assert_eq!(stats.enqueued, stats.executed());
        done_tx.send(()).ok();
    });

    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("deadlock: shutdown under backpressure did not resolve");
    scenario.join().expect("scenario thread panicked");
}

/// `capacity: Some(0)` is a queue nothing can enter; the engine refuses to
/// build rather than deadlocking the first blocking submit.
#[test]
#[should_panic(expected = "capacity")]
fn zero_capacity_engine_is_refused_at_build() {
    let _ = Engine::builder()
        .procs(1)
        .policy(BatchPolicy {
            capacity: Some(0),
            ..BatchPolicy::default()
        })
        .build();
}
