//! The distributed-backend suite: shared-nothing superstep execution must be
//! **bit-identical** to the shared-memory executor for every supported
//! workload across arbitrary shapes and rank counts (including non-powers of
//! two), its exact message accounting must agree with the
//! `cache-sim::distributed` analytic bounds up to documented constant
//! factors, and the critical-path message count must grow as `O(log p)`.

use paco_cache_sim::distributed::{paco_mm_distributed, paco_strassen_distributed};
use paco_core::semiring::BoolSemiring;
use paco_core::workload;
use paco_dist::{ceil_log2, lower, run_lowered, FwDist, MmDist, StrassenDist};
use paco_graph::plan_fw;
use paco_matmul::{plan_mm_1piece, plan_strassen, MmConfig, StrassenOptions, StrassenRun};
use paco_service::{Apsp, Backend, Closure, Lcs, MatMul, Session, Sort, Strassen};
use proptest::prelude::*;
use std::sync::Arc;

/// Rank counts exercised everywhere: deliberately including non-powers of
/// two (3, 5, 7 — prime, so the block-cyclic grid degenerates to `1 × p`).
const RANKS: &[usize] = &[1, 2, 3, 4, 5, 7, 8];

/// The apples-to-apples local twin of a `ranks`-way distributed session:
/// the same processor count compiles the *same* plan, so outputs must match
/// bit for bit (identical kernels over identical data in identical order).
fn local_session(p: usize) -> Session {
    Session::builder().procs(p).build()
}

fn dist_session(ranks: usize) -> Session {
    Session::builder()
        .procs(1)
        .backend(Backend::Distributed { ranks })
        .build()
}

fn placement(ranks: usize) -> paco_core::machine::Placement {
    paco_core::machine::Placement::new(ranks, paco_core::machine::Placement::DEFAULT_BLOCK)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// MM over `f64`: sums must be bit-identical, not merely close — the
    /// distributed executor orders accumulations exactly as the plan does.
    #[test]
    fn mm_distributed_agrees_bitwise(
        n in 4usize..48,
        k in 4usize..48,
        m in 4usize..48,
        seed in 0u64..1_000,
        ri in 0usize..7,
    ) {
        let a = workload::random_matrix_f64(n, k, seed);
        let b = workload::random_matrix_f64(k, m, seed + 1);
        let want = local_session(RANKS[ri]).run(MatMul { a: a.clone(), b: b.clone() });
        let got = dist_session(RANKS[ri]).run(MatMul { a, b });
        for i in 0..n {
            for j in 0..m {
                prop_assert_eq!(want.get(i, j).to_bits(), got.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn closure_distributed_agrees(
        n in 1usize..40,
        seed in 0u64..1_000,
        ri in 0usize..7,
    ) {
        let adj = workload::random_digraph(n, 0.3, 50, seed);
        let want = local_session(RANKS[ri]).run(Apsp { adj: adj.clone() });
        let got = dist_session(RANKS[ri]).run(Apsp { adj });
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(want.get(i, j), got.get(i, j));
            }
        }

        let reach = workload::random_adjacency(n, 0.2, seed);
        let want = local_session(RANKS[ri]).run(Closure::<BoolSemiring> { adj: reach.clone() });
        let got = dist_session(RANKS[ri]).run(Closure::<BoolSemiring> { adj: reach });
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(want.get(i, j), got.get(i, j));
            }
        }
    }

    #[test]
    fn lcs_distributed_agrees(
        n in 0usize..160,
        m in 0usize..160,
        seed in 0u64..1_000,
        ri in 0usize..7,
    ) {
        // n or m may be zero: the distributed backend must fall back to the
        // local pool for the degenerate shapes instead of failing.
        let a = workload::random_sequence(n, 4, seed);
        let b = workload::random_sequence(m, 4, seed + 1);
        let want = local_session(RANKS[ri]).run(Lcs { a: a.clone(), b: b.clone() });
        let got = dist_session(RANKS[ri]).run(Lcs { a, b });
        prop_assert_eq!(want, got);
    }

    #[test]
    fn strassen_distributed_agrees_bitwise(
        half in 2usize..24,
        seed in 0u64..1_000,
        ri in 0usize..7,
    ) {
        let n = 2 * half;
        let a = workload::random_matrix_f64(n, n, seed);
        let b = workload::random_matrix_f64(n, n, seed + 1);
        let want = local_session(RANKS[ri]).run(Strassen { a: a.clone(), b: b.clone() });
        let got = dist_session(RANKS[ri]).run(Strassen { a, b });
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(want.get(i, j).to_bits(), got.get(i, j).to_bits());
            }
        }
    }
}

/// Workloads without a distributed lowering transparently run on the local
/// pool — a distributed session never rejects a request.
#[test]
fn unsupported_requests_fall_back_to_local() {
    let session = dist_session(4);
    let keys = workload::random_keys(500, 9);
    let mut want = keys.clone();
    want.sort_by(f64::total_cmp);
    assert_eq!(session.run(Sort { keys }), want);
    // Nothing was lowered for the fallback.
    assert_eq!(session.lower_stats().misses, 0);
}

/// The communication schedule is lowered once per (shape, placement) and
/// cached — the distributed analogue of the skeleton cache.
#[test]
fn lowering_is_cached_per_shape() {
    let session = dist_session(3);
    for round in 0..3 {
        let adj = workload::random_digraph(24, 0.4, 30, round);
        session.run(Apsp { adj });
    }
    let stats = session.lower_stats();
    assert_eq!((stats.misses, stats.hits), (1, 2));
    let cache = session.cache_stats();
    assert_eq!((cache.misses, cache.hits), (1, 2));
}

/// Mixed submissions through the deferred session front-end on the
/// distributed backend: supported requests run distributed, the rest local,
/// all settled by one flush.
#[test]
fn session_flush_mixes_distributed_and_fallback() {
    let session = dist_session(4);
    let a = workload::random_matrix_f64(24, 24, 3);
    let b = workload::random_matrix_f64(24, 24, 4);
    let t_mm = session.submit(MatMul {
        a: a.clone(),
        b: b.clone(),
    });
    let t_sort = session.submit(Sort {
        keys: workload::random_keys(100, 5),
    });
    assert_eq!(session.flush(), 2);
    let want = local_session(4).run(MatMul { a, b });
    let got = t_mm.take();
    for i in 0..24 {
        for j in 0..24 {
            assert_eq!(want.get(i, j).to_bits(), got.get(i, j).to_bits());
        }
    }
    let sorted = t_sort.take();
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
}

/// The concurrent engine accepts the same backend knob: every shard
/// compiles eligible requests for the rank count and the outputs stay
/// bit-identical to the local backend.
#[test]
fn engine_runs_distributed_requests() {
    let engine = paco_service::Engine::builder()
        .procs(1)
        .backend(Backend::Distributed { ranks: 4 })
        .build();
    let client = engine.client();
    let a = workload::random_matrix_f64(32, 32, 7);
    let b = workload::random_matrix_f64(32, 32, 8);
    let t1 = client.submit(MatMul {
        a: a.clone(),
        b: b.clone(),
    });
    let t2 = client.submit(Lcs {
        a: workload::random_sequence(90, 4, 9),
        b: workload::random_sequence(80, 4, 10),
    });
    let got = t1.wait().expect("engine resolves the MM ticket");
    let want = local_session(4).run(MatMul { a, b });
    for i in 0..32 {
        for j in 0..32 {
            assert_eq!(want.get(i, j).to_bits(), got.get(i, j).to_bits());
        }
    }
    let want_lcs = local_session(4).run(Lcs {
        a: workload::random_sequence(90, 4, 9),
        b: workload::random_sequence(80, 4, 10),
    });
    assert_eq!(t2.wait().expect("engine resolves the LCS ticket"), want_lcs);
    engine.shutdown();
}

/// Measured MM traffic vs. the paper's distributed analysis
/// (`paco_mm_distributed`): mean words per rank must stay within a small
/// constant factor of the analytic `(surface + extra)/p` — and must not be
/// trivially zero.
#[test]
fn mm_words_per_rank_within_analytic_bound() {
    let (n, m, k) = (64, 64, 64);
    let a = workload::random_matrix_f64(n, k, 11);
    let b = workload::random_matrix_f64(k, m, 12);
    let cfg = MmConfig::default();
    for &p in &[2usize, 4, 8, 16] {
        let compiled = Arc::new(plan_mm_1piece(n, m, k, p, &cfg));
        let pl = placement(p);
        let w = MmDist::new(a.clone(), b.clone(), Arc::clone(&compiled), cfg.clone());
        let sp = lower(&w, &compiled.plan, &pl);
        let (_, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
        let analytic = paco_mm_distributed(n, m, k, p).words_per_proc;
        let measured = stats.comm.mean_rank_words();
        assert!(
            measured > 0.0,
            "p={p}: distributed MM moved no words at all"
        );
        // Documented constant factor: 4× covers the emulation's full-panel
        // scatter plus the exchange/writeback of accumulated output blocks.
        assert!(
            measured <= 4.0 * analytic,
            "p={p}: measured {measured} words/rank exceeds 4x analytic {analytic}"
        );
    }
}

/// Measured Strassen traffic vs. the CONST-PIECES bandwidth bound: words
/// per rank within a constant factor of `n² / p^{2/ω₀}` (Corollary 14).
#[test]
fn strassen_words_per_rank_within_analytic_bound() {
    let n = 128;
    let a = workload::random_matrix_f64(n, n, 13);
    let b = workload::random_matrix_f64(n, n, 14);
    let opts = StrassenOptions {
        cutoff: 16,
        parallel_base: 32,
        gamma: Some(3),
    };
    for &p in &[2usize, 4, 8, 16] {
        let compiled = Arc::new(plan_strassen(n, p, opts));
        let pl = placement(p);
        let run = StrassenRun::from_plan(a.clone(), b.clone(), Arc::clone(&compiled), 16);
        let w = StrassenDist::new(run, 16);
        let sp = lower(&w, &compiled.plan, &pl);
        let (_, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
        let analytic = paco_strassen_distributed(n, p, 3).words_per_proc;
        let measured = stats.comm.mean_rank_words();
        assert!(measured > 0.0);
        // Documented constant factor: 8× = 3 matrices per leaf (two
        // operands in, one product out) times the pruned tree's over-
        // decomposition slack against the flat `n²/p^{2/ω₀}` lower bound.
        assert!(
            measured <= 8.0 * analytic,
            "p={p}: measured {measured} words/rank exceeds 8x analytic {analytic}"
        );
    }
}

/// Latency: messages on the critical path grow as `O(log p)`.  Strassen's
/// plan is a single superstep, so the count is *exactly*
/// `4·⌈log₂ p⌉` (scatter fan + one barrier tree + gather fan); FW's grows
/// with its wave count but each superstep contributes at most
/// `2·⌈log₂ p⌉ + 2`.
#[test]
fn critical_path_messages_grow_logarithmically() {
    let n = 64;
    let a = workload::random_matrix_f64(n, n, 15);
    let b = workload::random_matrix_f64(n, n, 16);
    for &p in &[2usize, 4, 8, 16] {
        let compiled = Arc::new(plan_strassen(n, p, StrassenOptions::default()));
        let pl = placement(p);
        let run = StrassenRun::from_plan(a.clone(), b.clone(), Arc::clone(&compiled), 32);
        let w = StrassenDist::new(run, 32);
        let sp = lower(&w, &compiled.plan, &pl);
        let (_, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
        let log = ceil_log2(p) as u64;
        assert_eq!(
            stats.comm.critical_path_messages,
            4 * log,
            "p={p}: strassen critical path is one superstep deep"
        );
    }

    let adj = workload::random_digraph(n, 0.3, 40, 17);
    for &p in &[2usize, 4, 8, 16] {
        let compiled = Arc::new(plan_fw(n, p, 8));
        let pl = placement(p);
        let w = FwDist::new(adj.clone(), Arc::clone(&compiled), 8);
        let sp = lower(&w, &compiled.plan, &pl);
        let (_, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
        let log = ceil_log2(p) as u64;
        let supersteps = stats.comm.supersteps;
        assert!(
            stats.comm.critical_path_messages <= (supersteps + 1) * (2 * log + 2),
            "p={p}: critical path {} exceeds per-superstep O(log p) budget",
            stats.comm.critical_path_messages
        );
    }
}

/// Every send is metered: the per-rank word ledgers must add up exactly to
/// the phase totals, and the scheduled transfer words must equal the
/// executed ones (the schedule is the meter — nothing moves off the books).
#[test]
fn comm_accounting_is_exact() {
    let n = 48;
    let adj = workload::random_digraph(n, 0.35, 60, 19);
    for &p in RANKS {
        let compiled = Arc::new(plan_fw(n, p, 8));
        let pl = placement(p);
        let w = FwDist::new(adj.clone(), Arc::clone(&compiled), 8);
        let sp = lower(&w, &compiled.plan, &pl);
        let (_, stats) = run_lowered(&w, &compiled.plan, &pl, &sp);
        let c = &stats.comm;
        assert_eq!(
            c.data_words,
            c.scatter_words + c.exchange_words + c.writeback_words + c.gather_words
        );
        assert_eq!(c.exchange_words, sp.exchange_words());
        assert_eq!(c.writeback_words, sp.writeback_words());
        // Scatter + gather ship exactly the n² owned cells each way.
        assert_eq!(c.scatter_words, (n * n) as u64);
        assert_eq!(c.gather_words, (n * n) as u64);
        // The per-rank ledgers cover every transfer end (src + dst).
        let ledger: u64 = c.rank_words.iter().sum();
        let p2p_words: u64 = c.exchange_words + c.writeback_words;
        assert_eq!(ledger, c.scatter_words + c.gather_words + 2 * p2p_words);
        assert_eq!(c.supersteps as usize, compiled.plan.waves().len());
        assert_eq!(
            c.barrier_messages,
            c.supersteps * 2 * (p.saturating_sub(1)) as u64
        );
    }
}
