//! Build smoke test: the cheapest end-to-end guarantee that the workspace
//! not only compiles but computes the right answers.
//!
//! Asserts that the processor-oblivious (PO), processor-aware (PA) and
//! processor-aware-cache-oblivious (PACO) variants of LCS and matrix
//! multiplication all agree with their sequential references on small
//! inputs, across several processor counts.  The PACO runs go through the
//! service layer's `Session` — the front door every downstream consumer
//! uses.  If a future manifest or refactoring change silently breaks a
//! variant, this fails before any of the heavier suites run.

use paco_core::machine::CacheParams;
use paco_core::workload::{random_matrix_wrapping, related_sequences};
use paco_dp::lcs::{lcs_pa_traced, lcs_po, lcs_reference, lcs_sequential_co};
use paco_matmul::mm_reference;
use paco_matmul::po::co2_mm;
use paco_service::{Lcs, MatMul, Session};

#[test]
fn lcs_variants_agree_on_small_inputs() {
    let (a, b) = related_sequences(257, 4, 0.25, 0xC0DE);
    let expect = lcs_reference(&a, &b);
    assert_eq!(lcs_sequential_co(&a, &b, 32), expect, "sequential CO");
    assert_eq!(lcs_po(&a, &b, 64), expect, "PO");
    for p in paco_tests::interesting_processor_counts() {
        let session = Session::new(p);
        // The PA variant is exercised through its pool-free traced twin.
        let params = CacheParams::new(1024, 8);
        assert_eq!(lcs_pa_traced(&a, &b, p, params).0, expect, "PA with p={p}");
        assert_eq!(
            session.run(Lcs {
                a: a.clone(),
                b: b.clone()
            }),
            expect,
            "PACO with p={p}"
        );
    }
}

#[test]
fn matmul_variants_agree_on_small_inputs() {
    let a = random_matrix_wrapping(33, 17, 0xFEED);
    let b = random_matrix_wrapping(17, 29, 0xBEEF);
    let expect = mm_reference(&a, &b);
    assert_eq!(co2_mm(&a, &b), expect, "PO (CO2)");
    for p in paco_tests::interesting_processor_counts() {
        let session = Session::new(p);
        assert_eq!(
            session.run(MatMul {
                a: a.clone(),
                b: b.clone()
            }),
            expect,
            "PACO with p={p}"
        );
    }
}
