//! Tests of the wave-based schedule layer (`paco_runtime::schedule`):
//!
//! * property tests that plan-driven execution of every PACO front-end agrees
//!   bit-for-bit with the sequential variants across random sizes and
//!   processor counts (the plans may reorder work across waves, but every
//!   workload here is exact — integer-valued weights, integer DP cells,
//!   wrapping arithmetic — so agreement is equality, not approximation);
//! * a regression test that the flattened Floyd–Warshall plan issues strictly
//!   fewer barriers than the `fork2`-driven recursion it replaced (the PR 2
//!   ROADMAP item), measured both structurally (wave count vs fork count) and
//!   behaviourally (the runtime's scheduling counters);
//! * batching properties: a batched plan is as deep as its deepest
//!   constituent and produces the same results as individual runs.

use paco_dp::lcs::lcs_reference;
use paco_dp::one_d::kernel::FnWeight;
use paco_dp::one_d::{one_d_reference, plan_one_d};
use paco_graph::{fw_seq, plan_fw};
use paco_matmul::mm_reference;
use paco_matmul::paco_mm::{plan_mm_1piece, MmConfig};
use paco_runtime::schedule::Plan;
use paco_service::{Apsp, Lcs, MatMul, OneD, Session, Sort, Tuning};
use paco_sort::seq_sample_sort;
use proptest::prelude::*;

/// A session with every base-style knob pinned to `base` (deterministic
/// regardless of the `PACO_BASE` environment).
fn session_with_base(p: usize, base: usize) -> Session {
    Session::builder()
        .procs(p)
        .tuning(Tuning::default().with_base(base))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn fw_plan_agrees_with_seq_bit_for_bit(
        n in 1usize..96,
        p in 1usize..7,
        base_sel in 0usize..3,
        seed in 0u64..1000,
    ) {
        let base = [4usize, 8, 16][base_sel];
        let adj = paco_core::workload::random_digraph(n, 0.25, 40, seed);
        let session = session_with_base(p, base);
        prop_assert_eq!(session.run(Apsp { adj: adj.clone() }), fw_seq(&adj, base));
    }

    #[test]
    fn lcs_plan_agrees_with_reference_bit_for_bit(
        n in 1usize..150,
        m in 1usize..150,
        p in 1usize..7,
        seed in 0u64..1000,
    ) {
        let a = paco_core::workload::random_sequence(n, 4, seed);
        let b = paco_core::workload::random_sequence(m, 4, seed.wrapping_add(1));
        let session = session_with_base(p, 8);
        let expect = lcs_reference(&a, &b);
        prop_assert_eq!(session.run(Lcs { a, b }), expect);
    }

    #[test]
    fn one_d_plan_agrees_with_reference(
        n in 0usize..250,
        p in 1usize..7,
        base in 2usize..24,
        seed in 0u64..1000,
    ) {
        // Integer-valued weights make every min exact, so the plan's
        // different evaluation interleaving cannot change any bit.
        let w = FnWeight(move |i: usize, j: usize| {
            ((i as u64 * 31 + j as u64 * 17 + seed) % 41) as f64
        });
        let expect = one_d_reference(n, &w, 0.0);
        let session = session_with_base(p, base);
        let got = session.run(OneD { n, weight: w, d0: 0.0 });
        prop_assert_eq!(expect, got);
    }

    #[test]
    fn mm_plan_agrees_with_reference_exactly(
        n in 1usize..70,
        m in 1usize..70,
        k in 1usize..70,
        p in 1usize..7,
        seed in 0u64..1000,
    ) {
        // Wrapping arithmetic: associative and exact, so the height-cut
        // temporaries and reduction adds must reproduce the reference result
        // bit for bit.
        let a = paco_core::workload::random_matrix_wrapping(n, k, seed);
        let b = paco_core::workload::random_matrix_wrapping(k, m, seed.wrapping_add(7));
        let session = Session::new(p);
        let expect = mm_reference(&a, &b);
        prop_assert_eq!(session.run(MatMul { a, b }), expect);
    }

    #[test]
    fn sort_plan_agrees_with_sequential_sort(
        len in 0usize..40_000,
        p in 2usize..7,
        k in 2usize..24,
        seed in 0u64..1000,
    ) {
        // Force the parallel path for most lengths by using a low oversampling
        // ratio and letting the small-input cutoff handle the rest.
        let data = paco_core::workload::random_keys(len + 20_000, seed);
        let mut expect = data.clone();
        seq_sample_sort(&mut expect);
        let session = Session::builder()
            .procs(p)
            .tuning(Tuning { sort_oversampling: Some(k), ..Tuning::default() })
            .build();
        prop_assert_eq!(session.run(Sort { keys: data }), expect);
    }

    #[test]
    fn fw_batch_agrees_with_individual_runs(
        count in 1usize..5,
        p in 1usize..6,
        seed in 0u64..1000,
    ) {
        let session = session_with_base(p, 8);
        let adjs: Vec<_> = (0..count)
            .map(|i| paco_core::workload::random_digraph(8 + 9 * i, 0.3, 20, seed + i as u64))
            .collect();
        let individually: Vec<_> = adjs.iter().map(|a| fw_seq(a, 8)).collect();
        let batched = session.run_batch(adjs.into_iter().map(|adj| Apsp { adj }));
        prop_assert_eq!(batched, individually);
    }
}

#[test]
fn flattened_fw_plan_beats_the_recursive_barrier_count() {
    // Structural regression for the PR 2 ROADMAP item: the wave count of the
    // flattened plan must be strictly below the barrier count of the
    // fork2-driven recursion (one barrier per fork + per off-processor leaf),
    // which grew linearly with the recursion depth per phase.
    for &(n, base, p) in &[
        (64usize, 8usize, 2usize),
        (128, 8, 4),
        (128, 16, 5),
        (256, 16, 7),
    ] {
        let fw = plan_fw(n, p, base);
        assert!(
            fw.plan.barriers() < fw.fork_barriers,
            "n={n} base={base} p={p}: {} waves vs {} recursive barriers",
            fw.plan.barriers(),
            fw.fork_barriers
        );
        // The gain grows with p (the fork tree per phase is log-p deep while
        // the wave count per phase is bounded): at p = 2 the ratio is ~1.2x,
        // by p = 7 the plan needs at most half the barriers of the recursion.
        if p >= 7 {
            assert!(
                2 * fw.plan.barriers() <= fw.fork_barriers,
                "n={n} base={base} p={p}: expected ≥2x fewer barriers, got {} vs {}",
                fw.plan.barriers(),
                fw.fork_barriers
            );
        }
    }
}

#[test]
fn executed_barriers_match_the_plan_wave_count() {
    // Behavioural check through the runtime's scheduling counters: executing
    // a FW plan issues exactly one pool barrier per wave.
    let n = 96;
    let base = 8;
    let p = 4;
    let adj = paco_core::workload::random_digraph(n, 0.2, 30, 5);
    let session = session_with_base(p, base);
    let planned = plan_fw(n, p, base).plan.barriers() as u64;

    let _ = session.run(Apsp { adj });
    let stats = session.last_stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.plan_waves, planned);
    assert!(
        stats.pool_barriers >= planned,
        "each wave opens one pool scope"
    );
}

#[test]
fn batched_lcs_shares_barriers_and_matches_reference() {
    let session = session_with_base(4, 16);
    let inputs: Vec<(Vec<u32>, Vec<u32>)> = (0..8)
        .map(|i| {
            (
                paco_core::workload::random_sequence(30 + 13 * i, 4, i as u64),
                paco_core::workload::random_sequence(45 + 7 * i, 4, 50 + i as u64),
            )
        })
        .collect();
    let expect: Vec<u32> = inputs.iter().map(|(a, b)| lcs_reference(a, b)).collect();

    let got = session.run_batch(inputs.iter().map(|(a, b)| Lcs {
        a: a.clone(),
        b: b.clone(),
    }));
    let stats = session.last_stats();
    assert_eq!(got, expect);

    // One pool pass for all eight instances: the executed wave count is the
    // max of the per-instance wave counts, strictly below their sum.
    let per_instance: Vec<u64> = inputs
        .iter()
        .map(|(a, b)| {
            paco_dp::lcs::plan_paco_lcs(a.len(), b.len(), session.p(), 16)
                .plan
                .barriers() as u64
        })
        .collect();
    let max = *per_instance.iter().max().unwrap();
    let sum: u64 = per_instance.iter().sum();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.plan_waves, max);
    assert!(stats.plan_waves < sum);
}

#[test]
fn mm_plan_respects_fractions_in_the_cut_ratios() {
    // A processor with most of the throughput share must receive a leaf with
    // most of the volume.
    let cfg = MmConfig {
        fractions: Some(vec![0.7, 0.1, 0.1, 0.1]),
        throttle: None,
        cutoff: 16,
    };
    let plan = plan_mm_1piece(256, 256, 64, 4, &cfg);
    let mut volume = [0f64; 4];
    for step in plan.plan.iter() {
        if let paco_matmul::MmJob::Leaf { c, a, .. } = &step.job {
            volume[step.proc] += (c.rect.rows * c.rect.cols * a.cols) as f64;
        }
    }
    let total: f64 = volume.iter().sum();
    assert!(
        volume[0] / total > 0.5,
        "fast processor got only {:.2} of the volume",
        volume[0] / total
    );
}

#[test]
fn one_d_plan_temporaries_match_y_cut_count() {
    // A deep instance on several processors must produce y-cut temporaries,
    // and re-planning is deterministic.
    let a = plan_one_d(600, 6, 4);
    let b = plan_one_d(600, 6, 4);
    assert_eq!(a.tmp_len, b.tmp_len);
    assert_eq!(a.plan.barriers(), b.plan.barriers());
    assert!(a.plan.steps() > 0);
}

#[test]
fn heterogeneous_batches_pad_missing_waves() {
    // Batching plans of different depths: instances that finish early simply
    // stop contributing steps to later waves.
    let deep = plan_fw(128, 3, 8).plan;
    let shallow = plan_fw(16, 3, 8).plan;
    let (d, s) = (deep.barriers(), shallow.barriers());
    assert!(d > s);
    let batched = Plan::batch(vec![deep, shallow]);
    assert_eq!(batched.barriers(), d);
}
