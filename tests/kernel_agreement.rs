//! Agreement suite for the leaf-kernel fast paths (PR 8).
//!
//! The SIMD microkernel, the semiring-specialized Floyd–Warshall rows, the
//! branch-free LCS base block and the arena-pooled binds are all *pure
//! optimisations*: every one must produce **bit-identical** output to the
//! generic loop it replaces.  This file holds them to that:
//!
//! * `mm_base` over `f64` (which dispatches to the runtime-selected
//!   [`paco_core::simd`] microkernel) against a hand-written per-element
//!   reference in the same `i`-`l`-`j` fused-accumulation order, and the
//!   dispatched kernel against the portable one.
//! * `mm_base` over [`WrappingRing`] — exact integer arithmetic, so the
//!   row-sliced refactor of the generic loop is checked with no tolerance.
//! * The Floyd–Warshall [`relax`] kernel over `MinPlus` and `BoolSemiring`:
//!   the `NullTracker` run takes the specialized row fast path, the
//!   `SimTracker` run (tracking enabled) takes the historical generic loop —
//!   both in one process, compared cell by cell.
//! * The LCS [`base_block`] the same way: `NullTracker` runs the branch-free
//!   sweep, `SimTracker` the generic one.
//! * Arena reuse: warm same-shaped passes through one [`Session`] must
//!   return identical outputs while `arena_stats` reports a strictly
//!   positive reuse ratio.

use paco_cache_sim::{NullTracker, SimTracker};
use paco_core::machine::CacheParams;
use paco_core::matrix::Matrix;
use paco_core::semiring::Semiring;
use paco_core::simd::{mm_f64, mm_f64_portable, simd_mode};
use paco_core::workload::{
    random_adjacency, random_digraph, random_keys, random_matrix_f64, random_matrix_wrapping,
    related_sequences,
};
use paco_dp::lcs::kernel::{base_block, lcs_reference, LcsAddr, LcsTable};
use paco_graph::{fw_reference, relax, FwAddr, FwTable};
use paco_matmul::kernel::mm_base;
use paco_service::{Lcs, Session, Sort};
use proptest::prelude::*;

/// The per-element generic loop `mm_base` historically ran: same
/// `i`-`l`-`j` order, same fused [`Semiring::mul_add`] per element.
fn mm_generic_reference<S: Semiring>(c: &mut Matrix<S>, a: &Matrix<S>, b: &Matrix<S>) {
    for i in 0..c.rows() {
        for l in 0..a.cols() {
            let ail = a.get(i, l);
            for j in 0..c.cols() {
                c.set(i, j, c.get(i, j).mul_add(ail, b.get(l, j)));
            }
        }
    }
}

fn sim_tracker() -> SimTracker {
    SimTracker::new(1, CacheParams::new(1 << 14, 8))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// `f64` leaves route through the dispatched microkernel; results must
    /// be bit-identical to the per-element generic loop (both fuse with
    /// `mul_add` in the same accumulation order).
    #[test]
    fn f64_mm_base_is_bit_identical_to_the_generic_loop(
        n in 1usize..33,
        m in 1usize..33,
        k in 1usize..33,
        seed in 0u64..1000,
    ) {
        let a = random_matrix_f64(n, k, seed);
        let b = random_matrix_f64(k, m, seed ^ 0x9e37);
        let seed_c = random_matrix_f64(n, m, seed ^ 0x79b9);
        let mut fast = seed_c.clone();
        mm_base(&mut fast.as_mut(), &a.as_ref(), &b.as_ref());
        let mut generic = seed_c;
        mm_generic_reference(&mut generic, &a, &b);
        for i in 0..n {
            for j in 0..m {
                prop_assert_eq!(
                    fast.get(i, j).to_bits(),
                    generic.get(i, j).to_bits(),
                    "({}, {}) under mode {}", i, j, simd_mode()
                );
            }
        }
    }

    /// The dispatched kernel (AVX2+FMA where detected) agrees bit-for-bit
    /// with the portable kernel it replaces.
    #[test]
    fn dispatched_and_portable_f64_kernels_agree(
        n in 1usize..40,
        m in 1usize..40,
        k in 1usize..40,
        seed in 0u64..1000,
    ) {
        let a = random_matrix_f64(n, k, seed);
        let b = random_matrix_f64(k, m, seed ^ 0xabcd);
        let seed_c = random_matrix_f64(n, m, seed ^ 0x1234);
        let mut dispatched = seed_c.clone();
        mm_f64(&mut dispatched.as_mut(), &a.as_ref(), &b.as_ref());
        let mut portable = seed_c;
        mm_f64_portable(&mut portable.as_mut(), &a.as_ref(), &b.as_ref());
        for i in 0..n {
            for j in 0..m {
                prop_assert_eq!(
                    dispatched.get(i, j).to_bits(),
                    portable.get(i, j).to_bits(),
                    "({}, {}) under mode {}", i, j, simd_mode()
                );
            }
        }
    }

    /// Exact integer semiring: the row-sliced generic loop must match the
    /// per-element reference with no tolerance.
    #[test]
    fn wrapping_ring_mm_base_is_exact(
        n in 1usize..24,
        m in 1usize..24,
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        let a = random_matrix_wrapping(n, k, seed);
        let b = random_matrix_wrapping(k, m, seed ^ 0x55);
        let seed_c = random_matrix_wrapping(n, m, seed ^ 0xaa);
        let mut fast = seed_c.clone();
        mm_base(&mut fast.as_mut(), &a.as_ref(), &b.as_ref());
        let mut generic = seed_c;
        mm_generic_reference(&mut generic, &a, &b);
        prop_assert_eq!(fast, generic);
    }

    /// `MinPlus` leaves take the annihilator-skipping row fast path under
    /// `NullTracker`; the `SimTracker` replay runs the generic loop.  Both
    /// must close the graph identically (and match the triple-loop
    /// reference).
    #[test]
    fn min_plus_relax_fast_path_matches_generic(
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let adj = random_digraph(n, 0.2, 50, seed);
        let fast = FwTable::from_matrix(&adj);
        let addr = FwAddr::new(n);
        relax(&fast, 0..n, 0..n, 0..n, &mut NullTracker, &addr);
        let generic = FwTable::from_matrix(&adj);
        relax(&generic, 0..n, 0..n, 0..n, &mut sim_tracker(), &addr);
        prop_assert_eq!(fast.to_matrix(), generic.to_matrix());
        prop_assert_eq!(fast.to_matrix(), fw_reference(&adj));
    }

    /// Same agreement for boolean transitive closure (the `|=`-row fast
    /// path with its always-no-op aliased hook).
    #[test]
    fn bool_relax_fast_path_matches_generic(
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let adj = random_adjacency(n, 0.12, seed);
        let fast = FwTable::from_matrix(&adj);
        let addr = FwAddr::new(n);
        relax(&fast, 0..n, 0..n, 0..n, &mut NullTracker, &addr);
        let generic = FwTable::from_matrix(&adj);
        relax(&generic, 0..n, 0..n, 0..n, &mut sim_tracker(), &addr);
        prop_assert_eq!(fast.to_matrix(), generic.to_matrix());
        prop_assert_eq!(fast.to_matrix(), fw_reference(&adj));
    }

    /// The branch-free LCS base block (NullTracker) fills the table exactly
    /// like the generic sweep (SimTracker) and the textbook reference.
    #[test]
    fn lcs_base_block_fast_path_matches_generic(
        n in 1usize..60,
        m in 1usize..60,
        seed in 0u64..1000,
    ) {
        let (a, b) = related_sequences(n.max(m), 4, 0.3, seed);
        let (a, b) = (&a[..n], &b[..m]);
        let addr = LcsAddr::new(n, m);
        let fast = LcsTable::new(n, m);
        base_block(&fast, a, b, 1..n + 1, 1..m + 1, &mut NullTracker, &addr);
        let generic = LcsTable::new(n, m);
        base_block(&generic, a, b, 1..n + 1, 1..m + 1, &mut sim_tracker(), &addr);
        prop_assert_eq!(fast.grid().snapshot(), generic.grid().snapshot());
        prop_assert_eq!(fast.lcs_length(), lcs_reference(a, b));
    }
}

/// Warm passes through one session recycle their scratch buffers: the
/// outputs stay identical run over run while the arena reports hits.
#[test]
fn arena_reuse_keeps_outputs_identical_across_warm_passes() {
    let session = Session::new(2);
    let (a, b) = related_sequences(600, 4, 0.25, 17);
    let expect = lcs_reference(&a, &b);
    let keys = random_keys(4000, 23);
    let mut sorted = keys.clone();
    sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());

    let cold = session.arena_stats();
    assert_eq!(cold.hits, 0, "fresh session has no pooled buffers");

    for pass in 0..4 {
        let got = session.run(Lcs {
            a: a.clone(),
            b: b.clone(),
        });
        assert_eq!(got, expect, "pass {pass}");
        let got = session.run(Sort { keys: keys.clone() });
        assert_eq!(got, sorted, "pass {pass}");
    }

    let warm = session.arena_stats();
    assert!(
        warm.hits > 0,
        "warm passes must check buffers out of the pool: {warm:?}"
    );
    assert!(
        warm.reuse_ratio() > 0.0,
        "service/arena-reuse-ratio gauge must be positive: {warm:?}"
    );
}
