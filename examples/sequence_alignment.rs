//! Sequence alignment scenario: the workload the paper's DP sections are
//! motivated by (molecular-biology-style sequence comparison).
//!
//! Generates a pair of long, related DNA-like sequences (one is a mutated copy
//! of the other), computes their LCS length with the sequential
//! cache-oblivious, processor-oblivious and PACO variants (the PA p-way
//! variant is exercised by the `fig12a` figure binary), compares running
//! times, and then scores a batch of shorter fragment pairs with the GAP
//! (affine/general gap cost) model — submitted together and flushed through
//! one pool pass.
//!
//! Run with `cargo run -p paco_examples --release --example sequence_alignment`.

use paco_core::metrics::{speedup_percent, time_it};
use paco_core::workload::{related_sequences, GapCosts};
use paco_dp::gap::gap_reference;
use paco_dp::lcs::{lcs_po, lcs_sequential_co};
use paco_examples::{ms, section};
use paco_service::{Gap, Lcs, Session};

fn main() {
    let session = Session::with_available_parallelism();
    let p = session.p();
    let n = 6000;
    // DNA-like alphabet of 4 symbols, 15% mutation rate.
    let (a, b) = related_sequences(n, 4, 0.15, 2024);

    section(&format!(
        "LCS of two length-{n} sequences on {p} processors"
    ));
    let (seq_len, t_seq) = time_it(|| lcs_sequential_co(&a, &b, session.tuning().lcs_base));
    let (po_len, t_po) = time_it(|| lcs_po(&a, &b, 256));
    let (paco_len, t_paco) = time_it(|| session.run(Lcs { a, b }));
    assert!(seq_len == po_len && po_len == paco_len);
    println!(
        "LCS length = {paco_len} ({:.1}% of the sequence length)",
        100.0 * paco_len as f64 / n as f64
    );
    println!("  sequential CO : {}", ms(t_seq));
    println!(
        "  PO  (base 256): {}   speedup of PACO: {:+.1}%",
        ms(t_po),
        speedup_percent(t_po, t_paco)
    );
    println!("  PACO          : {}", ms(t_paco));

    section("GAP-model alignment scores for short fragments (submit + flush)");
    let costs = GapCosts {
        open: 2.0,
        extend: 0.5,
        seed: 7,
    };
    let fragments = [64usize, 96, 128];
    let tickets: Vec<_> = fragments
        .iter()
        .map(|&m| session.submit(Gap { n: m, costs }))
        .collect();
    let (flushed, t_flush) = time_it(|| session.flush());
    assert_eq!(flushed, fragments.len());
    for (&m, ticket) in fragments.iter().zip(&tickets) {
        let table = ticket.take();
        let score = table[(m + 1) * (m + 1) - 1];
        let reference = gap_reference(m, &costs);
        assert!((score - reference[(m + 1) * (m + 1) - 1]).abs() < 1e-9);
        println!("  fragment length {m:>4}: alignment cost {score:8.2}");
    }
    println!(
        "  all {flushed} fragments flushed through one pool pass in {} ({} waves)",
        ms(t_flush),
        session.last_stats().plan_waves
    );
}
