//! Shared helpers for the PACO example applications.
//!
//! Each runnable example lives next to this file (`quickstart.rs`, `apsp.rs`,
//! `sequence_alignment.rs`, `paragraph_formation.rs`,
//! `strassen_prime_procs.rs`, `cache_model_explorer.rs`) and is registered as a
//! Cargo example target, so they run with
//! `cargo run -p paco-examples --release --example <name>`.

/// Print a section header so multi-part example output stays readable.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a duration in milliseconds with two decimals.
pub fn ms(secs: f64) -> String {
    format!("{:.2} ms", secs * 1e3)
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_format() {
        assert_eq!(super::ms(0.001234), "1.23 ms");
        super::section("demo");
    }
}
