//! The service front end: a heterogeneous mix of PACO workloads submitted to
//! one `Session` and flushed through **one** pool pass.
//!
//! This is the ROADMAP's "collect requests into batches" item end-to-end: an
//! LCS query, an all-pairs-shortest-paths query, a matrix product, a sort, a
//! 1D least-weight subsequence and a GAP alignment are queued with
//! `Session::submit` — each compiled to its wave plan immediately — then
//! `Session::flush` zips all six plans wave-by-wave (`Plan::batch`) and runs
//! them in one pass, so the pool pays max-of-waves barriers instead of the
//! sum.  Every output is cross-checked against its reference implementation.
//!
//! Run with `cargo run -p paco_examples --release --example service_front_end`.

use paco_core::metrics::time_it;
use paco_core::workload::{
    random_digraph, random_keys, random_matrix_wrapping, related_sequences, GapCosts,
    ParagraphWeight,
};
use paco_examples::{ms, section};
use paco_service::{Apsp, Gap, Lcs, MatMul, OneD, Session, Sort};

fn main() {
    let session = Session::with_available_parallelism();
    println!(
        "Service front end on {} processors (tuning: lcs_base={}, fw_base={})",
        session.p(),
        session.tuning().lcs_base,
        session.tuning().fw_base
    );

    // ---- Queue a mixed bag of work. -------------------------------------
    section("Submitting a heterogeneous mix");
    let (sa, sb) = related_sequences(600, 4, 0.2, 1);
    let lcs_ticket = session.submit(Lcs {
        a: sa.clone(),
        b: sb.clone(),
    });

    let graph = random_digraph(96, 0.15, 50, 2);
    let apsp_ticket = session.submit(Apsp { adj: graph.clone() });

    let ma = random_matrix_wrapping(128, 96, 3);
    let mb = random_matrix_wrapping(96, 112, 4);
    let mm_ticket = session.submit(MatMul {
        a: ma.clone(),
        b: mb.clone(),
    });

    let keys = random_keys(50_000, 5);
    let sort_ticket = session.submit(Sort { keys: keys.clone() });

    let weight = ParagraphWeight { ideal: 11.0 };
    let oned_ticket = session.submit(OneD {
        n: 500,
        weight,
        d0: 0.0,
    });

    let costs = GapCosts::default();
    let gap_ticket = session.submit(Gap { n: 96, costs });

    println!(
        "queued {} requests across 6 workload types",
        session.pending()
    );
    assert!(!lcs_ticket.ready(), "nothing resolves before the flush");

    // ---- One pool pass for everything. ----------------------------------
    section("Flushing");
    let (flushed, secs) = time_it(|| session.flush());
    let stats = session.last_stats();
    println!(
        "flushed {flushed} requests in {} — one merged pass: {} waves, {} steps, {} pool barriers",
        ms(secs),
        stats.plan_waves,
        stats.plan_steps,
        stats.pool_barriers
    );
    assert_eq!(
        stats.pool_barriers, stats.plan_waves,
        "one barrier per merged wave, nothing else"
    );

    // ---- Cross-check every output. ---------------------------------------
    section("Cross-checking outputs against references");
    assert_eq!(
        lcs_ticket.take(),
        paco_dp::lcs::lcs_reference(&sa, &sb),
        "LCS"
    );
    assert_eq!(apsp_ticket.take(), paco_graph::fw_reference(&graph), "APSP");
    assert_eq!(
        mm_ticket.take(),
        paco_matmul::mm_reference(&ma, &mb),
        "MatMul"
    );
    let mut expect_sorted = keys;
    expect_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(sort_ticket.take(), expect_sorted, "Sort");
    let oned = oned_ticket.take();
    let oned_ref = paco_dp::one_d::one_d_reference(500, &weight, 0.0);
    assert!(
        oned.iter()
            .zip(&oned_ref)
            .all(|(x, y)| (x - y).abs() < 1e-9),
        "OneD"
    );
    let gap = gap_ticket.take();
    let gap_ref = paco_dp::gap::gap_reference(96, &costs);
    assert!(
        gap.iter().zip(&gap_ref).all(|(x, y)| (x - y).abs() < 1e-9),
        "Gap"
    );
    println!("all six outputs match their reference implementations");
}
