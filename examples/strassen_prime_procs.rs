//! Strassen on an arbitrary — even prime — number of processors.
//!
//! The open problem the paper answers (Ballard et al., Sect. 6.5): CAPS-style
//! parallel Strassen needs `p = m·7^k` processors; anything else wastes cores.
//! This example runs PACO Strassen on a range of processor counts including
//! primes, shows that every processor receives a balanced share of the 7-ary
//! multiplication tree, and contrasts that with how many processors a
//! CAPS-style algorithm could actually use.
//!
//! Run with `cargo run -p paco-examples --release --example strassen_prime_procs`.

use paco_core::machine::available_processors;
use paco_core::metrics::time_it;
use paco_core::util::{caps_usable_processors, is_prime};
use paco_core::workload::random_matrix_f64;
use paco_examples::section;
use paco_matmul::strassen::strassen_sequential;
use paco_service::{Session, Strassen};

fn main() {
    let n = 512;
    let a = random_matrix_f64(n, n, 10);
    let b = random_matrix_f64(n, n, 11);
    let reference = strassen_sequential(&a, &b);
    let max_p = available_processors();

    section(&format!(
        "PACO Strassen, n = {n}, processor counts 1..={max_p}"
    ));
    let (_, t1) = time_it(|| strassen_sequential(&a, &b));
    println!(
        "{:>3}  {:>6}  {:>9}  {:>8}  {:>9}  max |diff|",
        "p", "prime?", "time", "speedup", "CAPS uses"
    );
    for p in 1..=max_p {
        let session = Session::new(p);
        let (c, t) = time_it(|| {
            session.run(Strassen {
                a: a.clone(),
                b: b.clone(),
            })
        });
        println!(
            "{:>3}  {:>6}  {:>8.3}s  {:>7.2}x  {:>9}  {:.1e}",
            p,
            if is_prime(p as u64) { "yes" } else { "-" },
            t,
            t1 / t,
            caps_usable_processors(p),
            reference.max_abs_diff(&c)
        );
    }
    println!(
        "\nPACO uses every processor for every p; the CAPS column shows how many processors a\n\
         p = m·7^k algorithm could use — e.g. only 49 of 72 or 21 of 24 on the paper's machines."
    );
}
