//! Batched all-pairs shortest paths: many small graphs through one pool pass.
//!
//! Every PACO front-end compiles its partitioning into the wave-based
//! `paco_runtime::schedule::Plan` IR, and the service layer's
//! `Session::run_batch` merges independent plans wave-by-wave with
//! `Plan::batch`.  For small instances — whose individual runs are dominated
//! by spawn/join barriers rather than by work — the merged schedule needs
//! only as many barriers as the *deepest* instance, not the sum, which is
//! exactly what the session's scheduling stats show below.
//!
//! Run with `cargo run -p paco_examples --release --example batched_apsp`.

use paco_core::metrics::time_it;
use paco_core::workload::random_digraph;
use paco_examples::{ms, section};
use paco_graph::{fw_reference, plan_fw};
use paco_service::{Apsp, Session};

fn main() {
    let session = Session::with_available_parallelism();
    let p = session.p();
    let count = 24;
    let n = 48;
    println!("Batched PACO APSP: {count} graphs of {n} vertices on {p} processors");

    let graphs: Vec<_> = (0..count)
        .map(|i| random_digraph(n, 0.2, 50, 7 + i as u64))
        .collect();

    section("Correctness: batch vs per-instance reference");
    let expect: Vec<_> = graphs.iter().map(fw_reference).collect();
    let (batched, t_batch) =
        time_it(|| session.run_batch(graphs.iter().map(|g| Apsp { adj: g.clone() })));
    assert_eq!(batched, expect, "batched closure must match the references");
    println!("all {count} closures match the triple-loop reference");

    section("Barrier accounting (the point of batching)");
    let per_instance = plan_fw(n, p, session.tuning().fw_base).plan.barriers();
    let mut indiv_waves = 0u64;
    let (_, t_indiv) = time_it(|| {
        for g in &graphs {
            std::hint::black_box(session.run(Apsp { adj: g.clone() }));
            indiv_waves += session.last_stats().plan_waves;
        }
    });
    std::hint::black_box(session.run_batch(graphs.iter().map(|g| Apsp { adj: g.clone() })));
    let batch = session.last_stats();
    println!("plan waves per instance     : {per_instance}");
    println!("executed waves, individually: {indiv_waves} ({count} session runs)");
    println!(
        "executed waves, batched     : {} (1 batched pass over {} requests)",
        batch.plan_waves, batch.requests
    );
    assert_eq!(
        batch.plan_waves, per_instance as u64,
        "a batch of equal-size instances costs max-of-waves, i.e. one instance's waves"
    );
    assert!(
        batch.plan_waves < indiv_waves,
        "batching must cut the barrier count (p = {p})"
    );
    println!(
        "wall-clock: individually {} vs batched {}",
        ms(t_indiv),
        ms(t_batch)
    );
}
