//! Batched all-pairs shortest paths: many small graphs through one pool pass.
//!
//! Every PACO front-end compiles its partitioning into the wave-based
//! `paco_runtime::schedule::Plan` IR, and independent plans can be merged
//! wave-by-wave with `Plan::batch`.  For small instances — whose individual
//! runs are dominated by spawn/join barriers rather than by work — the merged
//! schedule needs only as many barriers as the *deepest* instance, not the
//! sum, which is exactly what the runtime's scheduling counters show below.
//!
//! Run with `cargo run -p paco_examples --release --example batched_apsp`.

use paco_core::machine::available_processors;
use paco_core::metrics::{sched, time_it};
use paco_core::workload::random_digraph;
use paco_examples::{ms, section};
use paco_graph::{fw_paco, fw_paco_batch, fw_reference, plan_fw, DEFAULT_BASE};
use paco_runtime::WorkerPool;

fn main() {
    let p = available_processors();
    let pool = WorkerPool::new(p);
    let count = 24;
    let n = 48;
    println!("Batched PACO APSP: {count} graphs of {n} vertices on {p} processors");

    let graphs: Vec<_> = (0..count)
        .map(|i| random_digraph(n, 0.2, 50, 7 + i as u64))
        .collect();

    section("Correctness: batch vs per-instance reference");
    let expect: Vec<_> = graphs.iter().map(fw_reference).collect();
    let (batched, t_batch) = time_it(|| fw_paco_batch(&graphs, &pool, DEFAULT_BASE));
    assert_eq!(batched, expect, "batched closure must match the references");
    println!("all {count} closures match the triple-loop reference");

    section("Barrier accounting (the point of batching)");
    let per_instance = plan_fw(n, p, DEFAULT_BASE).plan.barriers();
    let before = sched::snapshot();
    let (_, t_indiv) = time_it(|| {
        for g in &graphs {
            std::hint::black_box(fw_paco(g, &pool));
        }
    });
    let indiv = sched::snapshot().since(&before);
    let before = sched::snapshot();
    std::hint::black_box(fw_paco_batch(&graphs, &pool, DEFAULT_BASE));
    let batch = sched::snapshot().since(&before);
    println!("plan waves per instance     : {per_instance}");
    println!(
        "executed waves, individually: {} ({} plan executions)",
        indiv.plan_waves, indiv.plan_executions
    );
    println!(
        "executed waves, batched     : {} (1 plan execution)",
        batch.plan_waves
    );
    assert!(
        batch.plan_waves < indiv.plan_waves,
        "batching must cut the barrier count (p = {p})"
    );
    println!(
        "wall-clock: individually {} vs batched {}",
        ms(t_indiv),
        ms(t_batch)
    );
}
