//! Explore the ideal distributed cache model: how the measured per-processor
//! cache misses of the LCS schedules behave as `p` and the cache size `Z`
//! change, next to the closed-form Table I bounds.
//!
//! Run with `cargo run -p paco-examples --release --example cache_model_explorer`.

use paco_cache_sim::analytic::{cache_bound, BoundParams, Problem, Variant};
use paco_core::machine::CacheParams;
use paco_core::table::Table;
use paco_core::workload::related_sequences;
use paco_dp::lcs::{lcs_pa_traced, lcs_paco_traced, lcs_sequential_traced};
use paco_examples::section;

fn main() {
    let n = 512;
    let (a, b) = related_sequences(n, 4, 0.2, 1);
    // The cache-sim replays take no worker pool and pin the partitioning
    // grain: the sweeps compare p and Z at one fixed base size.
    let base = 32;

    section("Sweep over p at fixed cache size (Z = 1024 words, L = 8)");
    let params = CacheParams::new(1024, 8);
    let (_, seq) = lcs_sequential_traced(&a, &b, base, params);
    let q1 = seq.q_sum();
    let mut table = Table::new(
        format!("LCS, n = {n}: measured misses vs the Table I shape"),
        &[
            "p",
            "Q_sum PACO",
            "Q_sum PA",
            "Q_sum/Q1 PACO",
            "Q_max/mean PACO",
            "analytic Q_PACO/Q_PA",
        ],
    );
    for p in [1usize, 2, 4, 8, 12] {
        let (_, paco) = lcs_paco_traced(&a, &b, p, params, base);
        let (_, pa) = lcs_pa_traced(&a, &b, p, params);
        let bp = BoundParams::square(n, p, 1024, 8);
        let ratio = cache_bound(Problem::Lcs, Variant::Paco, bp).unwrap()
            / cache_bound(Problem::Lcs, Variant::Pa, bp).unwrap();
        table.row(&[
            p.to_string(),
            paco.q_sum().to_string(),
            pa.q_sum().to_string(),
            format!("{:.2}", paco.q_sum() as f64 / q1 as f64),
            format!("{:.2}", paco.q_imbalance()),
            format!("{ratio:.2}"),
        ]);
    }
    table.print();

    section("Sweep over cache size Z at fixed p = 4");
    let mut table = Table::new(
        format!("LCS, n = {n}, p = 4: misses shrink roughly like 1/Z while the table fits"),
        &["Z (words)", "Q_sum PACO", "Q_sum sequential"],
    );
    for z in [256usize, 512, 1024, 2048, 4096] {
        let params = CacheParams::new(z, 8);
        let (_, paco) = lcs_paco_traced(&a, &b, 4, params, base);
        let (_, seq) = lcs_sequential_traced(&a, &b, base, params);
        table.row(&[
            z.to_string(),
            paco.q_sum().to_string(),
            seq.q_sum().to_string(),
        ]);
    }
    table.print();
}
