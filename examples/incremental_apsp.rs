//! Incremental all-pairs shortest paths: close a graph once, then serve a
//! stream of edge updates by re-propagating only the dirty blocks.
//!
//! An `IncClose` request closes the adjacency through the ordinary parallel
//! FW plan and parks the result in the session's handle registry; each
//! `IncUpdate` then applies the single-edge formula
//! `D'[i][j] = D[i][j] ⊕ (D[i][u] ⊗ w ⊗ D[v][j])` over the dirty rectangle
//! only, falling back to a full re-closure when the frontier is too dense
//! (or the update is not an improvement — idempotent re-propagation can
//! never *raise* a distance).  The per-update table below shows the block
//! accounting: an ordinary "this link got faster" event touches a few
//! percent of the `⌈n/b⌉²` grid a from-scratch closure would redo.
//!
//! Run with `cargo run -p paco_examples --release --example incremental_apsp`.

use paco_core::metrics;
use paco_core::semiring::MinPlus;
use paco_core::workload::random_digraph;
use paco_examples::section;
use paco_graph::fw_reference;
use paco_service::{EdgeUpdate, IncClose, IncSnapshot, IncUpdate, Session};
use std::sync::Arc;

fn main() {
    let session = Session::with_available_parallelism();
    let registry = session.registry();
    let n = 96;
    let mut shadow = random_digraph(n, 0.15, 50, 11);
    println!(
        "Incremental PACO APSP: {n} vertices on {} processors (block = {}, fallback ≥ {}%)",
        session.p(),
        session.tuning().incr_block,
        session.tuning().incr_fallback_percent
    );

    section("Close once, keep the handle");
    let handle = session.run(IncClose {
        adj: shadow.clone(),
        registry: Arc::clone(&registry),
    });
    println!("closed graph registered as handle #{}", handle.id());

    section("Serve an update stream");
    // Seven modest improvements (distance − 1 shortcuts), then one
    // worsening update — the shortcut from step 1 gets *slower* again —
    // which must take the full re-closure: idempotent re-propagation can
    // only ever lower distances.
    let closed0 = session.run(IncSnapshot {
        handle,
        registry: Arc::clone(&registry),
    });
    let mut stream: Vec<EdgeUpdate<MinPlus>> = [
        (3usize, 77usize),
        (40, 8),
        (61, 15),
        (9, 52),
        (88, 30),
        (21, 70),
        (55, 2),
    ]
    .iter()
    .map(|&(u, v)| EdgeUpdate::new(u, v, MinPlus(closed0[(u, v)].0 - 1.0)))
    .collect();
    stream.push(EdgeUpdate::new(3, 77, MinPlus(500.0)));

    let grid = {
        let nb = n.div_ceil(session.tuning().incr_block);
        (nb * nb) as u64
    };
    println!("update           path         dirty rows×cols   blocks swept (grid {grid})");
    for update in stream {
        shadow[(update.from, update.to)] = update.weight;
        let before = metrics::incr::snapshot();
        let stats = session.run(IncUpdate {
            handle,
            updates: vec![update],
            registry: Arc::clone(&registry),
        });
        let delta = metrics::incr::snapshot().since(&before);
        let path = if stats.full > 0 {
            "full re-close"
        } else {
            "incremental"
        };
        println!(
            "({:2} → {:2}) w={:>5}  {path:13}  {:4} × {:<4}       {:4}",
            update.from,
            update.to,
            update.weight.0,
            delta.frontier_rows,
            delta.frontier_cols,
            delta.blocks_repropagated,
        );
        // Every intermediate state is exact, not eventually-consistent.
        let snapshot = session.run(IncSnapshot {
            handle,
            registry: Arc::clone(&registry),
        });
        assert_eq!(
            snapshot,
            fw_reference(&shadow),
            "incremental closure must be bit-identical to a from-scratch one"
        );
    }

    section("Totals");
    let snap = metrics::incr::snapshot();
    println!(
        "updates: {} incremental + {} via full re-closure; blocks swept/total = {:.3}",
        snap.updates_incremental,
        snap.updates_full,
        snap.repropagated_ratio()
    );
    println!("every snapshot matched the triple-loop reference — done");
}
