//! Quickstart: the three-minute tour of the PACO library.
//!
//! Creates a processor-aware worker pool sized to the machine, then runs one
//! representative problem from each family — matrix multiplication, Strassen,
//! LCS, the 1D problem and sorting — with its PACO algorithm, checking each
//! result against the reference implementation.
//!
//! Run with `cargo run -p paco-examples --release --example quickstart`.

use paco_core::machine::available_processors;
use paco_core::metrics::time_it;
use paco_core::workload::{random_keys, random_matrix_f64, related_sequences, ParagraphWeight};
use paco_dp::lcs::{lcs_paco, lcs_reference};
use paco_dp::one_d::{one_d_paco, one_d_reference};
use paco_examples::{ms, section};
use paco_matmul::{co_mm, mm_reference, paco_mm_1piece, strassen_paco};
use paco_runtime::WorkerPool;
use paco_sort::paco_sort;

fn main() {
    let p = available_processors();
    let pool = WorkerPool::new(p);
    println!("PACO quickstart on {p} processors");

    section("Rectangular matrix multiplication (PACO MM-1-PIECE)");
    let a = random_matrix_f64(384, 256, 1);
    let b = random_matrix_f64(256, 320, 2);
    let (c, secs) = time_it(|| paco_mm_1piece(&a, &b, &pool));
    let reference = mm_reference(&a, &b);
    println!(
        "384x256 * 256x320 in {} — max |diff| vs reference = {:.2e}",
        ms(secs),
        reference.max_abs_diff(&c)
    );

    section("Strassen's algorithm (PACO, pruned BFS of the 7-ary tree)");
    let sa = random_matrix_f64(512, 512, 3);
    let sb = random_matrix_f64(512, 512, 4);
    let (sc, secs) = time_it(|| strassen_paco(&sa, &sb, &pool));
    let mut sref = paco_core::matrix::Matrix::zeros(512, 512);
    co_mm(sref.as_mut(), sa.as_ref(), sb.as_ref());
    println!(
        "512x512 Strassen in {} — max |diff| vs classical = {:.2e}",
        ms(secs),
        sref.max_abs_diff(&sc)
    );

    section("Longest common subsequence (PACO LCS)");
    let (x, y) = related_sequences(4096, 4, 0.2, 5);
    let (len, secs) = time_it(|| lcs_paco(&x, &y, &pool));
    println!(
        "n = 4096 in {} — LCS length {len} (reference {})",
        ms(secs),
        lcs_reference(&x, &y)
    );

    section("Least-weight subsequence / 1D problem (PACO 1D)");
    let w = ParagraphWeight { ideal: 60.0 };
    let (d, secs) = time_it(|| one_d_paco(4096, &w, 0.0, &pool, 64));
    println!(
        "n = 4096 in {} — optimal cost {:.1} (reference {:.1})",
        ms(secs),
        d[4096],
        one_d_reference(4096, &w, 0.0)[4096]
    );

    section("Comparison sorting (PACO SORT)");
    let mut keys = random_keys(1 << 20, 9);
    let (_, secs) = time_it(|| paco_sort(&mut keys, &pool));
    println!(
        "2^20 doubles in {} — sorted: {}",
        ms(secs),
        keys.windows(2).all(|w| w[0] <= w[1])
    );
}
