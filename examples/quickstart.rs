//! Quickstart: the three-minute tour of the PACO library.
//!
//! Opens a [`paco_service::Session`] sized to the machine — the session owns
//! the processor-aware worker pool and the tuning config — then runs one
//! representative request from each family — matrix multiplication, Strassen,
//! LCS, the 1D problem and sorting — checking each result against the
//! reference implementation.
//!
//! Run with `cargo run -p paco_examples --release --example quickstart`.

use paco_core::metrics::time_it;
use paco_core::workload::{random_keys, random_matrix_f64, related_sequences, ParagraphWeight};
use paco_dp::lcs::lcs_reference;
use paco_dp::one_d::one_d_reference;
use paco_examples::{ms, section};
use paco_matmul::co_mm;
use paco_service::{Lcs, MatMul, OneD, Session, Sort, Strassen};

fn main() {
    let session = Session::with_available_parallelism();
    println!("PACO quickstart on {} processors", session.p());

    section("Rectangular matrix multiplication (PACO MM-1-PIECE)");
    let a = random_matrix_f64(384, 256, 1);
    let b = random_matrix_f64(256, 320, 2);
    let reference = paco_matmul::mm_reference(&a, &b);
    let (c, secs) = time_it(|| session.run(MatMul { a, b }));
    println!(
        "384x256 * 256x320 in {} — max |diff| vs reference = {:.2e}",
        ms(secs),
        reference.max_abs_diff(&c)
    );

    section("Strassen's algorithm (PACO, pruned BFS of the 7-ary tree)");
    let sa = random_matrix_f64(512, 512, 3);
    let sb = random_matrix_f64(512, 512, 4);
    let mut sref = paco_core::matrix::Matrix::zeros(512, 512);
    co_mm(sref.as_mut(), sa.as_ref(), sb.as_ref());
    let (sc, secs) = time_it(|| session.run(Strassen { a: sa, b: sb }));
    println!(
        "512x512 Strassen in {} — max |diff| vs classical = {:.2e}",
        ms(secs),
        sref.max_abs_diff(&sc)
    );

    section("Longest common subsequence (PACO LCS)");
    let (x, y) = related_sequences(4096, 4, 0.2, 5);
    let expect = lcs_reference(&x, &y);
    let (len, secs) = time_it(|| session.run(Lcs { a: x, b: y }));
    println!(
        "n = 4096 in {} — LCS length {len} (reference {expect})",
        ms(secs)
    );

    section("Least-weight subsequence / 1D problem (PACO 1D)");
    let w = ParagraphWeight { ideal: 60.0 };
    let (d, secs) = time_it(|| {
        session.run(OneD {
            n: 4096,
            weight: w,
            d0: 0.0,
        })
    });
    println!(
        "n = 4096 in {} — optimal cost {:.1} (reference {:.1})",
        ms(secs),
        d[4096],
        one_d_reference(4096, &w, 0.0)[4096]
    );

    section("Comparison sorting (PACO SORT)");
    let keys = random_keys(1 << 20, 9);
    let (sorted, secs) = time_it(|| session.run(Sort { keys }));
    println!(
        "2^20 doubles in {} — sorted: {}",
        ms(secs),
        sorted.windows(2).all(|w| w[0] <= w[1])
    );
}
