//! The concurrent service front end: many producer threads submitting a
//! heterogeneous PACO mix to one `Engine` while its executor shards run
//! passes — nobody ever calls `flush`.
//!
//! This is the ROADMAP's "concurrent ingress" item end-to-end: an
//! `Engine` with two executor shards (each owning its own pinned
//! `WorkerPool`) accepts `Lcs`/`Apsp`/`MatMul`/`Sort`/`Gap` submissions from
//! four producer threads at once, coalesces whatever arrives inside each
//! gathering window (`BatchPolicy`) into merged max-of-waves passes, and
//! resolves tickets as passes complete.  Every output is cross-checked
//! against its reference implementation, and the engine's ingress stats
//! prove the coalescing (passes ≪ requests).
//!
//! Run with `cargo run -p paco_examples --release --example concurrent_service`.

use paco_core::metrics::time_it;
use paco_core::workload::{
    random_digraph, random_keys, random_matrix_wrapping, related_sequences, GapCosts,
};
use paco_examples::{ms, section};
use paco_service::{Apsp, BatchPolicy, Engine, Gap, Lcs, MatMul, Routing, Sort};
use std::time::Duration;

const PRODUCERS: usize = 4;
const ROUNDS: usize = 3;

fn main() {
    let engine = Engine::builder()
        .policy(BatchPolicy {
            max_batch: 32,
            max_wait: Duration::from_millis(20),
            shards: 2,
            routing: Routing::SizeBalanced,
            ..BatchPolicy::default()
        })
        .build();
    println!(
        "Engine: {} shard(s) x {} processors, {:?} routing, max_batch={}, max_wait={:?}",
        engine.policy().shards,
        engine.p(),
        engine.policy().routing,
        engine.policy().max_batch,
        engine.policy().max_wait,
    );

    // ---- Four producers hammer the engine concurrently. ------------------
    section("Submitting from 4 producer threads");
    let (_, secs) = time_it(|| {
        std::thread::scope(|scope| {
            for producer in 0..PRODUCERS {
                let client = engine.client();
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        let seed = (100 * producer + round) as u64;

                        let (a, b) = related_sequences(300, 4, 0.2, seed);
                        let lcs = client.submit(Lcs {
                            a: a.clone(),
                            b: b.clone(),
                        });

                        let graph = random_digraph(48, 0.2, 50, seed + 1);
                        let apsp = client.submit(Apsp { adj: graph.clone() });

                        let ma = random_matrix_wrapping(64, 48, seed + 2);
                        let mb = random_matrix_wrapping(48, 56, seed + 3);
                        let mm = client.submit(MatMul {
                            a: ma.clone(),
                            b: mb.clone(),
                        });

                        let keys = random_keys(20_000, seed + 4);
                        let sort = client.submit(Sort { keys: keys.clone() });

                        let costs = GapCosts::default();
                        let gap = client.submit(Gap { n: 48, costs });

                        // Block on the tickets (condvar, no spin) and
                        // cross-check every output against its reference.
                        assert_eq!(
                            lcs.wait().unwrap(),
                            paco_dp::lcs::lcs_reference(&a, &b),
                            "LCS"
                        );
                        assert_eq!(
                            apsp.wait().unwrap(),
                            paco_graph::fw_reference(&graph),
                            "APSP"
                        );
                        assert_eq!(
                            mm.wait().unwrap(),
                            paco_matmul::mm_reference(&ma, &mb),
                            "MatMul"
                        );
                        let mut expect_sorted = keys;
                        expect_sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
                        assert_eq!(sort.wait().unwrap(), expect_sorted, "Sort");
                        let got_gap = gap.wait().unwrap();
                        let ref_gap = paco_dp::gap::gap_reference(48, &costs);
                        assert!(
                            got_gap
                                .iter()
                                .zip(&ref_gap)
                                .all(|(x, y)| (x - y).abs() < 1e-9),
                            "Gap"
                        );
                    }
                });
            }
        });
    });
    let requests = PRODUCERS * ROUNDS * 5;
    println!(
        "{requests} requests submitted, executed and cross-checked in {}",
        ms(secs)
    );

    // ---- The ingress counters tell the coalescing story. -----------------
    section("Shutting down and reading the final ingress stats");
    let stats = engine.shutdown();
    println!(
        "enqueued {} | passes {} | coalesce ratio {:.2} requests/pass | poisoned {} | rejected {}",
        stats.enqueued,
        stats.passes(),
        stats.coalesce_ratio(),
        stats.poisoned,
        stats.rejected,
    );
    for (i, shard) in stats.shards.iter().enumerate() {
        println!(
            "  shard {i}: {} passes, {} requests, {} queued",
            shard.passes, shard.requests, shard.queued
        );
    }
    assert_eq!(stats.enqueued, requests as u64);
    assert_eq!(stats.executed(), requests as u64);
    assert!(
        stats.passes() < requests as u64,
        "coalescing must merge requests into shared passes"
    );
    println!(
        "\ncoalescing verified: {} passes for {requests} requests",
        stats.passes()
    );
}
