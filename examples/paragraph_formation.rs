//! Optimal paragraph formation — the classic application of the 1D /
//! least-weight-subsequence problem (Hirschberg & Larmore; Knuth–Plass line
//! breaking uses the same recurrence).
//!
//! A synthetic document of word lengths is generated; breaking it into lines of
//! an ideal width is scored with the convex penalty `(line length − ideal)²`.
//! The example compares the greedy first-fit heuristic against the optimal
//! breaks computed by the PACO 1D algorithm, and cross-checks the optimum with
//! the sequential reference.
//!
//! Run with `cargo run -p paco-examples --release --example paragraph_formation`.

use paco_core::metrics::time_it;
use paco_dp::one_d::kernel::FnWeight;
use paco_dp::one_d::one_d_reference;
use paco_examples::section;
use paco_service::{OneD, Session};
use rand::Rng;

fn main() {
    let session = Session::with_available_parallelism();
    let p = session.p();
    let n_words = 5000usize;
    let ideal_width = 72.0f64;

    // Synthetic word lengths between 2 and 12 characters.
    let mut rng = paco_core::workload::rng(99);
    let word_len: Vec<f64> = (0..n_words).map(|_| rng.gen_range(2..=12) as f64).collect();
    // Prefix sums so the length of a line spanning words (i, j] is O(1).
    let mut prefix = vec![0.0f64; n_words + 1];
    for i in 0..n_words {
        prefix[i + 1] = prefix[i] + word_len[i] + 1.0; // +1 for the space
    }

    // w(i, j) = (length of the line holding words i..j  −  ideal)².
    let prefix_for_weight = prefix.clone();
    let weight = FnWeight(move |i: usize, j: usize| {
        let line = prefix_for_weight[j] - prefix_for_weight[i] - 1.0;
        let over = line - ideal_width;
        over * over
    });

    section(&format!(
        "Breaking {n_words} words into lines of ideal width {ideal_width} on {p} processors"
    ));
    let (d, secs) = time_it(|| {
        session.run(OneD {
            n: n_words,
            weight: weight.clone(),
            d0: 0.0,
        })
    });
    let optimal = d[n_words];
    let reference = one_d_reference(n_words, &weight, 0.0)[n_words];
    assert!((optimal - reference).abs() < 1e-6);

    // Greedy first-fit: break as late as possible without exceeding the ideal.
    let mut greedy_cost = 0.0;
    let mut start = 0usize;
    for j in 1..=n_words {
        let line = prefix[j] - prefix[start] - 1.0;
        let next_line = if j < n_words {
            prefix[j + 1] - prefix[start] - 1.0
        } else {
            f64::INFINITY
        };
        if next_line > ideal_width || j == n_words {
            let over = line - ideal_width;
            greedy_cost += over * over;
            start = j;
        }
    }

    println!(
        "optimal raggedness (PACO 1D) : {optimal:12.1}   computed in {:.2} ms",
        secs * 1e3
    );
    println!("greedy first-fit raggedness  : {greedy_cost:12.1}");
    println!(
        "the optimal breaks are {:.1}% better than greedy",
        100.0 * (greedy_cost - optimal) / greedy_cost
    );
}
