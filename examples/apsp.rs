//! All-pairs shortest paths and transitive closure with PACO Floyd–Warshall.
//!
//! Builds a random weighted digraph, closes it over the tropical `(min, +)`
//! semiring with the sequential, PO and PACO variants (checking all three
//! against the naive triple loop), runs the boolean transitive closure, and
//! finishes with the cache-simulator comparison: `Q₁` of the sequential
//! cache-oblivious recursion vs `Q^Σ_p`/`Q^max_p` of the PACO partitioning.
//! The PACO runs go through the service layer's `Session` (the `Apsp` and
//! `Closure` requests); the base-case knob comes from its `Tuning`.
//!
//! Run with `cargo run -p paco_examples --release --example apsp`.

use paco_core::machine::CacheParams;
use paco_core::metrics::time_it;
use paco_core::semiring::{BoolSemiring, MinPlus, Semiring};
use paco_core::workload::{random_adjacency, random_digraph};
use paco_examples::{ms, section};
use paco_graph::{fw_paco_traced, fw_po, fw_reference, fw_seq, fw_seq_traced};
use paco_service::{Apsp, Closure, Session};

fn main() {
    let session = Session::with_available_parallelism();
    let p = session.p();
    let base = session.tuning().fw_base;
    let n = 384;
    println!("PACO Floyd–Warshall quickstart on {p} processors, n = {n}");

    section("All-pairs shortest paths over (min, +)");
    let graph = random_digraph(n, 0.1, 100, 42);
    let reference = fw_reference(&graph);
    let (seq, seq_secs) = time_it(|| fw_seq(&graph, base));
    let (po, po_secs) = time_it(|| fw_po(&graph, base));
    let (paco, paco_secs) = time_it(|| session.run(Apsp { adj: graph.clone() }));
    println!(
        "seq CO {} | PO {} | PACO {} — agree with the triple loop: {}",
        ms(seq_secs),
        ms(po_secs),
        ms(paco_secs),
        seq == reference && po == reference && paco == reference
    );
    let reachable = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .filter(|&(i, j)| paco.get(i, j) != MinPlus::zero())
        .count();
    println!("{reachable} of {} ordered pairs are connected", n * n);

    section("Transitive closure over the boolean semiring");
    let adjacency = random_adjacency(n, 0.004, 7);
    let (closure, secs) = time_it(|| {
        session.run(Closure::<BoolSemiring> {
            adj: adjacency.clone(),
        })
    });
    let edges = adjacency.data().iter().filter(|b| b.0).count();
    let closed = closure.data().iter().filter(|b| b.0).count();
    println!(
        "{edges} edges close to {closed} reachable pairs in {} — matches reference: {}",
        ms(secs),
        closure == fw_reference(&adjacency)
    );

    section("Ideal distributed cache model: Q1 vs PACO Q_sum / Q_max");
    let sim_n = 192;
    let sim_graph = random_digraph(sim_n, 0.1, 50, 11);
    let params = CacheParams::new(2048, 8);
    let sim_base = 16;
    let (_, q1_sim) = fw_seq_traced(&sim_graph, sim_base, params);
    let q1 = q1_sim.q_sum();
    println!("n = {sim_n}, Z = 2048 words, L = 8 words — sequential CO Q1 = {q1} misses");
    for procs in [2usize, 4, 7] {
        let (_, sim) = fw_paco_traced(&sim_graph, procs, sim_base, params);
        println!(
            "PACO p = {procs}: Q_sum = {} ({:.2}x Q1), Q_max = {} ({:.2}x Q1/p), imbalance {:.2}",
            sim.q_sum(),
            sim.q_sum() as f64 / q1 as f64,
            sim.q_max(),
            sim.q_max() as f64 / (q1 as f64 / procs as f64),
            sim.q_imbalance()
        );
    }
}
