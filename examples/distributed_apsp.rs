//! All-pairs shortest paths on the **distributed backend**: the same digraph
//! closed on `Backend::Local` and on `Backend::Distributed { ranks: 4 }`,
//! asserting the two closures are *bit-identical* — the superstep emulation
//! replays the exact same plan through the exact same leaf kernels, so even
//! the `f64` tropical weights match to the last bit — and printing the
//! per-rank words/messages table from the `paco_core::metrics::comm`
//! ledgers that every send is metered into.
//!
//! Run with `cargo run -p paco_examples --release --example distributed_apsp`.

use paco_core::metrics::comm;
use paco_core::workload::random_digraph;
use paco_examples::section;
use paco_service::{Apsp, Backend, Session};

const RANKS: usize = 4;

fn main() {
    let n = 96;
    let graph = random_digraph(n, 0.15, 100, 9);
    println!("Distributed APSP emulation: n = {n}, ranks = {RANKS}");

    section("Shared-memory run (Backend::Local)");
    // The local twin uses the same processor count the distributed session
    // uses ranks, so both compile the *same* plan — the precondition for
    // bit-identity (same kernels over same data in same order).
    let local = Session::builder().procs(RANKS).build();
    let expect = local.run(Apsp { adj: graph.clone() });
    println!("closed {n}x{n} digraph on {RANKS} shared-memory processors");

    section("Shared-nothing run (Backend::Distributed)");
    let words_before = comm::rank_words();
    let messages_before = comm::rank_messages();
    let before = comm::snapshot();
    let dist = Session::builder()
        .procs(1)
        .backend(Backend::Distributed { ranks: RANKS })
        .build();
    let got = dist.run(Apsp { adj: graph });
    let delta = comm::snapshot().since(&before);
    let words = comm::rank_words();
    let messages = comm::rank_messages();

    let identical = expect
        .data()
        .iter()
        .zip(got.data().iter())
        .all(|(a, b)| a.0.to_bits() == b.0.to_bits());
    assert!(identical, "distributed closure diverged from local");
    println!("distributed closure is bit-identical to the local run: {identical}");

    section("Communication (exact, from the comm ledgers)");
    println!(
        "{} supersteps, {} data messages, {} data words \
         (scatter {} / exchange {} / writeback {} / gather {})",
        delta.supersteps,
        delta.data_messages,
        delta.data_words,
        delta.scatter_words,
        delta.exchange_words,
        delta.writeback_words,
        delta.gather_words,
    );
    println!(
        "{} barrier messages, {} messages on the critical path",
        delta.barrier_messages, delta.critical_path_messages
    );
    println!("\n  rank       words    messages");
    let mut total_words = 0u64;
    let mut total_messages = 0u64;
    for rank in 0..RANKS {
        let w =
            words.get(rank).copied().unwrap_or(0) - words_before.get(rank).copied().unwrap_or(0);
        let m = messages.get(rank).copied().unwrap_or(0)
            - messages_before.get(rank).copied().unwrap_or(0);
        total_words += w;
        total_messages += m;
        println!("  {rank:>4}  {w:>10}  {m:>10}");
    }
    println!("   sum  {total_words:>10}  {total_messages:>10}");
    assert!(total_words > 0, "a distributed run must ship words");
    assert_eq!(
        delta.runs, 1,
        "exactly one distributed run should have been recorded"
    );
    println!("\nok: bit-identical output, {total_words} words across {RANKS} ranks");
}
